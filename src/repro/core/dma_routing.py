"""DMA request routing for zero-copy — paper Fig. 4(b).

The BMS-Engine bridges two separate PCIe domains (host-side and
SSD-side) without buffering data.  It rewrites every host PRP entry
into a *global PRP* before handing commands to the back-end SSDs:

* bits [63:57] — PCIe PF/VF function id (7 bits)
* bit  [56]    — PRP-list flag (1 bit)
* bits [47:0]  — the original host physical address

When a back-end SSD later issues a DMA TLP at a global address, the
engine recovers the function id from the address, strips the tag, and
forwards the request out of the matching front-end PF/VF into host
memory — merging the two domains into one and letting the SSD move
data directly to/from the host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import SimulationError

__all__ = [
    "FUNCTION_ID_BITS",
    "FUNCTION_ID_SHIFT",
    "LIST_FLAG_SHIFT",
    "ADDRESS_MASK",
    "DMA_MODELS",
    "RouteStats",
    "DMATranslation",
    "DescriptorRingDMA",
    "encode_global_prp",
    "decode_global_prp",
    "is_global_prp",
]

#: engine step-⑤ machinery variants (see :class:`DescriptorRingDMA`)
DMA_MODELS = ("register", "descriptor")


class RouteStats:
    """Counts of DMA requests the engine routed between the domains.

    Fed by the engine's step-⑤ router; ``writes``/``reads`` are from
    the SSD's point of view (a host *read* command makes the SSD issue
    DMA *writes* into host memory).
    """

    __slots__ = ("writes", "write_bytes", "reads", "read_bytes")

    def __init__(self) -> None:
        self.writes = 0
        self.write_bytes = 0
        self.reads = 0
        self.read_bytes = 0

    def note_write(self, nbytes: int) -> None:
        self.writes += 1
        self.write_bytes += nbytes

    def note_read(self, nbytes: int) -> None:
        self.reads += 1
        self.read_bytes += nbytes

    @property
    def total_requests(self) -> int:
        return self.writes + self.reads

    @property
    def total_bytes(self) -> int:
        return self.write_bytes + self.read_bytes

FUNCTION_ID_BITS = 7
FUNCTION_ID_SHIFT = 57
LIST_FLAG_SHIFT = 56
ADDRESS_MASK = (1 << 48) - 1
_FN_MASK = (1 << FUNCTION_ID_BITS) - 1


def encode_global_prp(function_id: int, host_addr: int, is_list: bool = False) -> int:
    """Insert the function id + list flag into a host PRP entry.

    ``function_id`` 0 is reserved so that untagged (engine-local)
    addresses are distinguishable — the engine assigns front-end
    functions ids 1..127.
    """
    if not 0 < function_id <= _FN_MASK:
        raise SimulationError(
            f"function id {function_id} outside 1..{_FN_MASK} (0 is reserved)"
        )
    if host_addr & ~ADDRESS_MASK:
        raise SimulationError(f"host address {host_addr:#x} exceeds 48 bits")
    return (
        (function_id << FUNCTION_ID_SHIFT)
        | ((1 if is_list else 0) << LIST_FLAG_SHIFT)
        | host_addr
    )


def decode_global_prp(global_prp: int) -> tuple[int, int, bool]:
    """Split a global PRP into (function_id, host_addr, is_list)."""
    function_id = (global_prp >> FUNCTION_ID_SHIFT) & _FN_MASK
    is_list = bool((global_prp >> LIST_FLAG_SHIFT) & 1)
    host_addr = global_prp & ADDRESS_MASK
    return function_id, host_addr, is_list


def is_global_prp(addr: int) -> bool:
    """True when the address carries a non-zero function-id tag."""
    return ((addr >> FUNCTION_ID_SHIFT) & _FN_MASK) != 0


@dataclass
class DMATranslation:
    """Per-queue address/LBA translation for passthrough queues.

    When a guest SQ/CQ pair is mapped straight onto a back-end SSD
    (the I/O-queue passthrough scheme), the drive fetches guest SQEs
    and DMAs guest pages directly.  Every address the drive touches is
    a *guest* host address, so the engine hands the device-side queue
    pair one of these: :meth:`tag` stamps the owning function id into
    each address (turning it into a global PRP the engine's root space
    routes out the front), and ``lba_offset``/``num_blocks`` shift and
    bound guest LBAs into the drive's physical window.
    """

    fn_id: int
    lba_offset: int
    num_blocks: int
    #: host-side MSI-X raiser, ``raise_vector(vector)``
    raise_vector: object = field(compare=False, default=None)
    #: cleared on surprise hot-remove: a dead drive's TLPs route nowhere
    live: bool = True

    def tag(self, addr: int) -> int:
        return encode_global_prp(self.fn_id, addr)

    def fire_irq(self, cq):
        """An MSI-X thunk for ``CompletionQueue.note_cqe``: raises the
        host-side vector through the engine front port, suppressed once
        the translation dies (a yanked drive cannot interrupt)."""

        def fire() -> None:
            if self.live and cq.irq_vector is not None:
                self.raise_vector(cq.irq_vector)

        return fire


class DescriptorRingDMA:
    """Descriptor-ring streaming DMA: the step-⑤ alternative model.

    The default ``register`` model is a cut-through trigger FSM paying
    ``cut_through_ns`` of routing latency on every TLP, all requests in
    parallel.  This model instead streams requests through a LitePCIe-
    style descriptor ring: a single worker pops one descriptor per
    ``per_desc_ns`` and *launches* the fabric transfer without waiting
    for the data (the fabric's bandwidth links pace the bytes).  Issue
    is serialized but much cheaper per descriptor, which is the classic
    throughput-over-latency trade at high queue depth.

    The worker process is started lazily on the first descriptor and
    exits when the ring drains, so an unused engine adds no events.
    """

    def __init__(self, sim, port, per_desc_ns: int = 40, name: str = "descdma"):
        self.sim = sim
        self.port = port
        self.per_desc_ns = per_desc_ns
        self.name = name
        self._fifo: list[tuple] = []
        self._worker_live = False
        self.descriptors = 0
        self.peak_depth = 0

    def submit_write(self, host_addr: int, length: int, data) -> None:
        """Queue a device->host transfer (fire-and-forget)."""
        self._push(("w", host_addr, length, data, None))

    def submit_read(self, host_addr: int, length: int):
        """Queue a host->device transfer; returns the data event."""
        done = self.sim.event(name=f"{self.name}.rd")
        self._push(("r", host_addr, length, None, done))
        return done

    def _push(self, desc: tuple) -> None:
        self._fifo.append(desc)
        if len(self._fifo) > self.peak_depth:
            self.peak_depth = len(self._fifo)
        if not self._worker_live:
            self._worker_live = True
            self.sim.process(self._worker(), name=f"{self.name}.worker")

    def _worker(self):
        while self._fifo:
            kind, host_addr, length, data, done = self._fifo.pop(0)
            self.descriptors += 1
            yield self.sim.timeout(self.per_desc_ns)
            if kind == "w":
                self.sim.process(self._issue_write(host_addr, length, data),
                                 name=f"{self.name}.w")
            else:
                self.sim.process(self._issue_read(host_addr, length, done),
                                 name=f"{self.name}.r")
        self._worker_live = False

    def _issue_write(self, host_addr: int, length: int, data):
        yield self.port.mem_write(host_addr, length, data)

    def _issue_read(self, host_addr: int, length: int, done):
        data = yield self.port.mem_read(host_addr, length)
        done.succeed(data)
