"""Host Adaptor: the BMS-Engine's back-end NVMe initiator.

For each attached SSD the adaptor keeps an SQ/CQ pair *in engine chip
memory* (the rings the paper's step ③/⑥ reference), pushes remapped
commands, rings the SSD's doorbell over the back-end PCIe domain, and
hands completions back to the engine when the SSD DMA-writes CQEs into
the adaptor CQ.

It also implements the per-slot pause/drain/resume machinery that
hot-upgrade and hot-plug use: while paused, forwarded commands are held
in a pending buffer (the *I/O context*), and nothing reaches the SSD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..nvme.command import SQE, free_cqe, free_sqe
from ..nvme.queues import CompletionQueue, SubmissionQueue
from ..nvme.spec import StatusCode
from ..nvme.ssd import NVMeSSD
from ..sim import Event, Resource, SimulationError, Simulator

__all__ = ["BackendSlot", "HostAdaptor"]

BACKEND_QUEUE_DEPTH = 1024
BACKEND_QID = 1


@dataclass
class _PendingForward:
    sqe: SQE
    on_complete: Callable[[int], None]  # called with the CQE status


class BackendSlot:
    """One back-end SSD attachment point."""

    def __init__(self, adaptor: "HostAdaptor", index: int, ssd: NVMeSSD):
        self.adaptor = adaptor
        self.index = index
        self.ssd: Optional[NVMeSSD] = ssd
        self.sim = adaptor.sim
        self.paused = False
        self.pause_buffer: list[_PendingForwardRequest] = []
        self.inflight = 0
        self._drain_event: Optional[Event] = None
        self._next_cid = 0
        self.pending: dict[int, _PendingForward] = {}
        self.slots = Resource(self.sim, BACKEND_QUEUE_DEPTH - 1, name=f"bslot{index}")
        self.forwarded = 0
        self.completed = 0
        mem = adaptor.chip_memory
        self.sq = SubmissionQueue(
            mem, mem.alloc(BACKEND_QUEUE_DEPTH * 64), BACKEND_QUEUE_DEPTH,
            sqid=BACKEND_QID,
        )
        self.cq = CompletionQueue(
            mem, mem.alloc(BACKEND_QUEUE_DEPTH * 16), BACKEND_QUEUE_DEPTH,
            cqid=BACKEND_QID,
        )
        self._cq_range = (self.cq.base, self.cq.base + BACKEND_QUEUE_DEPTH * 16)
        adaptor._register_cq_range(self)
        # admin queue pair toward the drive (firmware, identify, logs)
        self.admin_sq = SubmissionQueue(mem, mem.alloc(32 * 64), 32, sqid=0)
        self.admin_cq = CompletionQueue(mem, mem.alloc(32 * 16), 32, cqid=0)
        self._admin_cq_range = (self.admin_cq.base, self.admin_cq.base + 32 * 16)
        self._admin_pending: dict[int, Callable[[int], None]] = {}
        self._next_admin_cid = 0
        adaptor._register_admin_cq_range(self)
        if adaptor.checks is not None:
            for ring in (self.sq, self.cq, self.admin_sq, self.admin_cq):
                adaptor.checks.bind_ring(ring)
        self._bind_ssd(ssd)

    def _bind_ssd(self, ssd: NVMeSSD) -> None:
        ssd.attach_queue_pair(BACKEND_QID, self.sq, self.cq)
        self.cq.irq_vector = None  # the engine snoops CQ writes instead
        ssd.attach_queue_pair(0, self.admin_sq, self.admin_cq)
        self.admin_cq.irq_vector = None

    # ------------------------------------------------------------- hot swap
    def detach_ssd(self) -> Optional[NVMeSSD]:
        """Hot-plug: unbind the (faulty) drive, keeping the front end."""
        old = self.ssd
        if old is not None:
            old.detach_queue_pair(BACKEND_QID)
            old.detach_queue_pair(0)
        self.ssd = None
        return old

    def surprise_remove(self) -> Optional[NVMeSSD]:
        """Surprise hot-remove: detach without a drain, failing every
        in-flight and pause-buffered command with NAMESPACE_NOT_READY.

        CQEs the removed drive already DMA'd (or late ones from a race)
        become stale: :meth:`_reap` ignores them because their pending
        contexts are gone.  The accounting (inflight, ring slots) is
        settled here so the sim kernel never deadlocks on a drained
        event or a leaked slot.
        """
        removed = self.detach_ssd()
        failed, self.pending = self.pending, {}
        buffered, self.pause_buffer = self.pause_buffer, []
        for cid in sorted(failed):
            self.inflight -= 1
            self.slots.release()
            failed[cid].on_complete(int(StatusCode.NAMESPACE_NOT_READY))
        for req in buffered:
            req.on_complete(int(StatusCode.NAMESPACE_NOT_READY))
        admin_failed, self._admin_pending = self._admin_pending, {}
        for cid in sorted(admin_failed):
            admin_failed[cid](int(StatusCode.NAMESPACE_NOT_READY))
        if self.inflight == 0 and self._drain_event is not None:
            ev, self._drain_event = self._drain_event, None
            ev.succeed()
        return removed

    # ---------------------------------------------------------- admin path
    def forward_admin(self, sqe: SQE, on_complete: Callable[[int], None]) -> None:
        """Issue an admin command to the drive (BMS-Controller use)."""
        self.sim.process(self._forward_admin(sqe, on_complete), name="slot.admin")

    def _forward_admin(self, sqe: SQE, on_complete: Callable[[int], None]):
        yield self.sim.timeout(self.adaptor.push_ns)
        if self.ssd is None:
            # surprise-removed drive: the admin command fails fast
            on_complete(int(StatusCode.NAMESPACE_NOT_READY))
            return
        self._next_admin_cid = (self._next_admin_cid + 1) % 0xFFFF
        sqe.cid = self._next_admin_cid
        self._admin_pending[sqe.cid] = on_complete
        self.admin_sq.push(sqe)
        yield self.adaptor.backend_fabric.cpu_write(self.ssd.doorbell_addr(0), 4)

    def on_admin_cq_write(self) -> None:
        self.sim.process(self._reap_admin(), name="slot.adminreap")

    def _reap_admin(self):
        yield self.sim.timeout(self.adaptor.cqe_relay_ns)
        while True:
            cqe = self.admin_cq.poll()
            if cqe is None:
                return
            cb = self._admin_pending.pop(cqe.cid, None)
            if cb is not None:
                cb(cqe.status)
            free_cqe(cqe)

    def attach_ssd(self, ssd: NVMeSSD) -> None:
        if self.ssd is not None:
            raise SimulationError(f"slot {self.index} already has an SSD")
        self.ssd = ssd
        self._bind_ssd(ssd)
        if self.adaptor.engine is not None:
            # re-map passthrough queues onto the replacement drive
            self.adaptor.engine.on_slot_attached(self.index)

    # ------------------------------------------------------ pause machinery
    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False
        buffered, self.pause_buffer = self.pause_buffer, []
        for req in buffered:
            self.sim.process(self._forward_now(req), name="slot.replay")

    def drain(self) -> Event:
        """Event firing when no commands remain at the SSD."""
        ev = self.sim.event(name=f"slot{self.index}.drained")
        if self.inflight == 0:
            ev.succeed()
        else:
            self._drain_event = ev
        return ev

    def io_context(self) -> dict:
        """The I/O context stored before an upgrade (paper §IV-D)."""
        return {
            "sq_head": self.sq.head,
            "sq_tail": self.sq.tail,
            "cq_head": self.cq.head,
            "pending_cids": sorted(self.pending),
            "buffered": len(self.pause_buffer),
        }

    # ------------------------------------------------------------ forwarding
    def forward(self, sqe: SQE, on_complete: Callable[[int], None]) -> None:
        """Queue a remapped command toward this SSD (engine step ③)."""
        req = _PendingForwardRequest(sqe, on_complete)
        if self.paused:
            self.pause_buffer.append(req)
        else:
            self.sim.process(self._forward_now(req), name="slot.fwd")

    def _forward_now(self, req: "_PendingForwardRequest"):
        if self.paused:
            self.pause_buffer.append(req)
            return
        yield self.slots.acquire()
        yield self.sim.timeout(self.adaptor.push_ns)
        if self.ssd is None:
            # surprise-removed drive: fail fast with a real NVMe status
            # so the host driver's retry/requeue policy can engage
            self.slots.release()
            req.on_complete(int(StatusCode.NAMESPACE_NOT_READY))
            return
        self._next_cid = (self._next_cid + 1) % 0xFFFF
        cid = self._next_cid
        sqe = req.sqe
        sqe.cid = cid
        self.pending[cid] = _PendingForward(sqe, req.on_complete)
        self.inflight += 1
        self.forwarded += 1
        self.sq.push(sqe)
        yield self.adaptor.backend_fabric.cpu_write(
            self.ssd.doorbell_addr(BACKEND_QID), 4
        )

    # ------------------------------------------------------------ completion
    def on_cq_write(self) -> None:
        """The engine saw a DMA write land in this slot's CQ range."""
        self.sim.process(self._reap(), name="slot.reap")

    def _reap(self):
        yield self.sim.timeout(self.adaptor.cqe_relay_ns)
        while True:
            cqe = self.cq.poll()
            if cqe is None:
                return
            ctx = self.pending.pop(cqe.cid, None)
            if ctx is None:
                # stale CQE: the command was already failed by a
                # surprise removal — its slot/inflight accounting is
                # settled, so this completion must not double-release
                continue
            self.inflight -= 1
            self.completed += 1
            self.slots.release()
            if self.inflight == 0 and self._drain_event is not None:
                ev, self._drain_event = self._drain_event, None
                ev.succeed()
            ctx.on_complete(cqe.status)
            # the forwarded command round-tripped: both ring entries are
            # consumed and the device-side coroutine has exited, so the
            # remapped SQE and its CQE can rejoin the free lists
            free_sqe(ctx.sqe)
            free_cqe(cqe)


@dataclass
class _PendingForwardRequest:
    sqe: SQE
    on_complete: Callable[[int], None]


class HostAdaptor:
    """All back-end slots plus the chip-memory CQ snooping."""

    def __init__(
        self,
        sim: Simulator,
        chip_memory,
        backend_fabric,
        push_ns: int = 100,
        cqe_relay_ns: int = 150,
    ):
        self.sim = sim
        self.chip_memory = chip_memory
        self.backend_fabric = backend_fabric
        self.push_ns = push_ns
        self.cqe_relay_ns = cqe_relay_ns
        self.slots: list = []  # BackendSlot | ExtendedBackendSlot
        self.engine = None  # set by the owning BMSEngine
        self.checks = None  # CheckContext; slots bind their rings when set
        self._cq_ranges: list[tuple[int, int, BackendSlot]] = []
        self._admin_cq_ranges: list[tuple[int, int, BackendSlot]] = []

    def add_ssd(self, ssd: NVMeSSD) -> BackendSlot:
        slot = BackendSlot(self, len(self.slots), ssd)
        self.slots.append(slot)
        return slot

    def _register_cq_range(self, slot: BackendSlot) -> None:
        lo, hi = slot._cq_range
        self._cq_ranges.append((lo, hi, slot))

    def _register_admin_cq_range(self, slot: BackendSlot) -> None:
        lo, hi = slot._admin_cq_range
        self._admin_cq_ranges.append((lo, hi, slot))

    def notice_write(self, addr: int) -> None:
        """Chip-memory write hook: detect CQE landings."""
        for lo, hi, slot in self._cq_ranges:
            if lo <= addr < hi:
                slot.on_cq_write()
                return
        for lo, hi, slot in self._admin_cq_ranges:
            if lo <= addr < hi:
                slot.on_admin_cq_write()
                return

    def slot_for(self, ssd_id: int) -> BackendSlot:
        if not 0 <= ssd_id < len(self.slots):
            raise SimulationError(f"no back-end slot {ssd_id}")
        return self.slots[ssd_id]
