"""AXI register bus between the BMS-Engine (FPGA) and BMS-Controller (ARM).

The engine publishes status/counter registers; the controller reads
them (I/O monitor) and writes control registers (pause, resume,
configuration strobes).  Register accesses carry a fixed bus latency.
"""

from __future__ import annotations

from typing import Callable

from ..sim import Event, SimulationError, Simulator

__all__ = ["AXIBus"]


class AXIBus:
    """A memory-mapped register file with timed accesses."""

    def __init__(self, sim: Simulator, access_ns: int = 120, name: str = "axi"):
        self.sim = sim
        self.access_ns = access_ns
        self.name = name
        self._read_handlers: dict[int, Callable[[], int]] = {}
        self._write_handlers: dict[int, Callable[[int], None]] = {}
        self.reads = 0
        self.writes = 0

    def register_read(self, addr: int, handler: Callable[[], int]) -> None:
        if addr in self._read_handlers:
            raise SimulationError(f"{self.name}: read register {addr:#x} already bound")
        self._read_handlers[addr] = handler

    def register_write(self, addr: int, handler: Callable[[int], None]) -> None:
        if addr in self._write_handlers:
            raise SimulationError(f"{self.name}: write register {addr:#x} already bound")
        self._write_handlers[addr] = handler

    def read(self, addr: int) -> Event:
        """Timed register read; event fires with the value."""
        handler = self._read_handlers.get(addr)
        if handler is None:
            raise SimulationError(f"{self.name}: no read register at {addr:#x}")
        self.reads += 1
        ev = self.sim.event(name=f"{self.name}.rd")
        self.sim.timeout(self.access_ns).callbacks.append(
            lambda _e: ev.succeed(handler())
        )
        return ev

    def write(self, addr: int, value: int) -> Event:
        """Timed register write; event fires when applied."""
        handler = self._write_handlers.get(addr)
        if handler is None:
            raise SimulationError(f"{self.name}: no write register at {addr:#x}")
        self.writes += 1
        ev = self.sim.event(name=f"{self.name}.wr")

        def apply(_e) -> None:
            handler(value)
            ev.succeed()

        self.sim.timeout(self.access_ns).callbacks.append(apply)
        return ev
