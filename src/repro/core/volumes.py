"""Copy-on-write volume composition over the BMS-Engine Mapping Table.

BM-Store's Fig. 4a table translates host chunks to physical extents but
knows nothing about *sharing*: every namespace owns its chunks outright,
so provisioning a tenant from a golden image means copying every chunk
up front.  This layer adds the missing composition story on top of the
unmodified translation hardware model:

* **golden images** — any namespace adopted by the manager becomes a
  clonable base volume;
* **thin clones** — a clone gets its own :class:`MappingTable` whose
  entries point at the *source's* physical chunks, bumping a per-chunk
  refcount instead of copying data (provisioning is O(chunks) metadata);
* **snapshots** — a point-in-time freeze of a volume's chunk list,
  holding a reference on every chunk so later writes to the origin
  cannot free it from under the snapshot;
* **CoW faulting** — the engine write path consults the manager before
  translation; the first write to a *shared* chunk allocates a fresh
  physical chunk, charges a modeled copy latency, remaps the table
  entry, and drops the reference on the parent chunk.

A chunk is shared iff its refcount exceeds one; the *last* holder
writes in place, so a fully-diverged clone pays no further CoW tax.
Refcounts are per ``(ssd_id, physical_chunk)`` — exactly the coordinate
the packed 8-bit mapping entry encodes — and the lba checker shadows
them (:meth:`CheckContext.on_chunk_free` fails if a chunk is freed
while still referenced).

The manager is dormant by default (``engine.volumes is None``): worlds
that never call :meth:`BMSEngine.volume_manager` execute byte-identical
event sequences to pre-volume builds.
"""

from __future__ import annotations

from typing import Optional

from ..nvme.namespace import Namespace
from ..nvme.spec import LBA_BYTES
from ..sim import SimulationError
from .lba_mapping import MappingEntry, MappingTable

__all__ = ["VolumeManager", "CLONE_CHUNK_META_NS", "COW_COPY_NS"]

#: modeled metadata cost of cloning one chunk (table write + refcount
#: bump on the ARM core) — provisioning a 24-chunk volume costs ~6 us,
#: versus minutes for a physical copy of 1.5 TB
CLONE_CHUNK_META_NS = 250

#: modeled cost of the CoW chunk copy on first write.  The production
#: copy is a background chunk-sized DMA; the simulation charges a flat
#: latency on the faulting command (the paper-scale 64 GiB chunk would
#: dominate any run, so this models a small-chunk dev configuration).
COW_COPY_NS = 40_000


class VolumeManager:
    """Refcounted chunk sharing, snapshots, and thin clones for one engine."""

    def __init__(self, engine, cow_copy_ns: int = COW_COPY_NS,
                 clone_chunk_meta_ns: int = CLONE_CHUNK_META_NS):
        self.engine = engine
        self.obs = engine.obs
        self.cow_copy_ns = cow_copy_ns
        self.clone_chunk_meta_ns = clone_chunk_meta_ns
        #: (ssd_id, physical chunk) -> number of holders (volumes + snapshots)
        self.refcounts: dict[tuple[int, int], int] = {}
        #: volume key -> {"kind": "base"|"clone", "parent": Optional[str]}
        self.volumes: dict[str, dict] = {}
        #: snapshot name -> frozen state of its origin volume
        self.snapshots: dict[str, dict] = {}
        #: per-volume CoW fault counts (global total in ``cow_faults``)
        self.faults_by_volume: dict[str, int] = {}
        self.cow_faults = 0
        self.clones_created = 0
        self.snapshots_created = 0
        #: bound CheckContext (lba checker shadows refcounts); None = dormant
        self.checks = None
        ctx = engine._check_ctx
        if ctx is not None:
            ctx.bind_volumes(self)
        # existing namespaces become base volumes immediately so their
        # chunks are refcounted before any snapshot/clone touches them
        for key in sorted(engine.namespaces):
            self.adopt(key)

    # ------------------------------------------------------------ refcounts
    def _incref(self, phys: tuple[int, int]) -> None:
        count = self.refcounts.get(phys, 0) + 1
        self.refcounts[phys] = count
        if self.checks is not None:
            self.checks.on_chunk_incref(self, phys, count)
        self._publish_shared()

    def _decref(self, phys: tuple[int, int]) -> bool:
        """Drop one reference; returns True when the chunk became free."""
        count = self.refcounts.get(phys)
        if count is None:
            raise SimulationError(f"decref of untracked chunk {phys}")
        if self.checks is not None:
            self.checks.on_chunk_decref(self, phys, count - 1)
        if count > 1:
            self.refcounts[phys] = count - 1
            self._publish_shared()
            return False
        del self.refcounts[phys]
        if self.checks is not None:
            self.checks.on_chunk_free(self, phys)
        self._publish_shared()
        return True

    def is_shared(self, phys: tuple[int, int]) -> bool:
        return self.refcounts.get(phys, 1) > 1

    def shared_chunk_count(self) -> int:
        return sum(1 for count in self.refcounts.values() if count > 1)

    def _publish_shared(self) -> None:
        if self.obs is not None:
            self.obs.gauge("shared_chunks").set(self.shared_chunk_count())

    # ------------------------------------------------------------- volumes
    def adopt(self, key: str) -> None:
        """Register an existing engine namespace as a base volume."""
        if key in self.volumes:
            return
        ens = self.engine.namespaces.get(key)
        if ens is None:
            raise SimulationError(f"no namespace {key} to adopt")
        self.volumes[key] = {"kind": "base", "parent": None}
        self.faults_by_volume.setdefault(key, 0)
        for phys in ens.chunks:
            self._incref(tuple(phys))

    def _resolve_source(self, source: str):
        """A clone source: a live volume or a snapshot.

        Returns ``(chunk list, num_blocks, parent name)``.
        """
        snap = self.snapshots.get(source)
        if snap is not None:
            return list(snap["chunks"]), snap["num_blocks"], source
        ens = self.engine.namespaces.get(source)
        if ens is None:
            raise SimulationError(f"no volume or snapshot named {source}")
        self.adopt(source)
        return list(ens.chunks), ens.namespace.num_blocks, source

    def create_snapshot(self, volume: str, snapshot: str) -> dict:
        """Freeze ``volume``'s current mapping under the name ``snapshot``."""
        if snapshot in self.snapshots or snapshot in self.engine.namespaces:
            raise SimulationError(f"name {snapshot} already in use")
        ens = self.engine.namespaces.get(volume)
        if ens is None:
            raise SimulationError(f"no volume {volume}")
        self.adopt(volume)
        chunks = tuple(tuple(phys) for phys in ens.chunks)
        self.snapshots[snapshot] = {
            "origin": volume,
            "chunks": chunks,
            "num_blocks": ens.namespace.num_blocks,
        }
        for phys in chunks:
            self._incref(phys)
        self.snapshots_created += 1
        if self.obs is not None:
            self.obs.counter("snapshots_created").inc()
        return self.volume_stat(snapshot)

    def delete_snapshot(self, snapshot: str) -> None:
        snap = self.snapshots.pop(snapshot, None)
        if snap is None:
            raise SimulationError(f"no snapshot {snapshot}")
        for phys in snap["chunks"]:
            freed = self._decref(phys)
            if freed:
                self.engine._free_chunks[phys[0]].append(phys[1])

    def clone_volume(self, source: str, key: str):
        """Thin-clone ``source`` (volume or snapshot) into namespace ``key``.

        No data moves: the clone's fresh :class:`MappingTable` points at
        the source's physical chunks and every chunk gains a reference.
        Returns the new :class:`EngineNamespace` (unbound; the caller
        attaches a function and QoS limits as for any namespace).
        """
        engine = self.engine
        if key in engine.namespaces or key in self.snapshots:
            raise SimulationError(f"name {key} already in use")
        chunks, num_blocks, parent = self._resolve_source(source)
        rows = max(1, -(-len(chunks) // 8))
        table = MappingTable(engine.chunk_blocks, rows=rows)
        if engine._check_ctx is not None:
            engine._check_ctx.bind_table(table)
        for idx, (ssd_id, chunk) in enumerate(chunks):
            table.set_entry(idx, MappingEntry(base_chunk=chunk, ssd_id=ssd_id))
            self._incref((ssd_id, chunk))
        ns = Namespace(nsid=1, num_blocks=num_blocks)
        from .engine import EngineNamespace

        ens = EngineNamespace(key=key, namespace=ns, table=table,
                              chunks=[tuple(phys) for phys in chunks])
        engine.namespaces[key] = ens
        self.volumes[key] = {"kind": "clone", "parent": parent}
        self.faults_by_volume[key] = 0
        self.clones_created += 1
        if self.obs is not None:
            self.obs.counter("clones_created").inc()
            self.obs.counter("clone_provision_ns").inc(self.clone_cost_ns(len(chunks)))
        return ens

    def clone_cost_ns(self, nchunks: int) -> int:
        """Modeled provisioning latency: pure metadata, O(chunks)."""
        return self.clone_chunk_meta_ns * max(1, nchunks)

    def release_namespace(self, key: str, ens) -> list[tuple[int, int]]:
        """Namespace teardown: drop refs; return the chunks now free."""
        self.volumes.pop(key, None)
        freeable: list[tuple[int, int]] = []
        for phys in ens.chunks:
            phys = tuple(phys)
            if self.refcounts.get(phys) is None:
                # never adopted (manager created after heavy churn)
                freeable.append(phys)
            elif self._decref(phys):
                freeable.append(phys)
        return freeable

    # ------------------------------------------------------------ CoW path
    def on_write(self, ens, slba: int, nblocks: int, span=None):
        """Engine write-path hook, *before* translation (step ② prefix).

        Generator: yields only when a shared chunk actually faults, so
        the common unshared case adds zero simulation events.
        """
        if not self.refcounts:
            return
        cs = ens.table.chunk_blocks
        first = slba // cs
        last = (slba + max(1, nblocks) - 1) // cs
        for idx in range(first, min(last, len(ens.chunks) - 1) + 1):
            phys = tuple(ens.chunks[idx])
            if self.refcounts.get(phys, 1) > 1:
                yield from self._cow_fault(ens, idx, phys, span)

    def _cow_fault(self, ens, idx: int, old: tuple[int, int], span=None):
        """First write to a shared chunk: allocate, copy, remap, decref."""
        new_ssd, new_chunk = self._alloc_chunk(prefer=old[0])
        # the chunk copy is the only simulated cost of the fault
        yield self.engine.sim.timeout(self.cow_copy_ns)
        self.refcounts[(new_ssd, new_chunk)] = 1
        if self.checks is not None:
            self.checks.on_chunk_incref(self, (new_ssd, new_chunk), 1)
        ens.table.set_entry(
            idx, MappingEntry(base_chunk=new_chunk, ssd_id=new_ssd))
        ens.chunks[idx] = (new_ssd, new_chunk)
        freed = self._decref(old)
        if freed:
            # the writer held the penultimate ref and a concurrent
            # release dropped the other: return the parent chunk
            self.engine._free_chunks[old[0]].append(old[1])
        self.cow_faults += 1
        self.faults_by_volume[ens.key] = self.faults_by_volume.get(ens.key, 0) + 1
        if self.obs is not None:
            self.obs.counter("cow_faults", ns=ens.key).inc()
        if span is not None:
            span.note_fault("cow_fault")

    def _alloc_chunk(self, prefer: int) -> tuple[int, int]:
        """A free physical chunk, same-SSD preferred (deterministic)."""
        free = self.engine._free_chunks
        order = [prefer] + [i for i in range(len(free)) if i != prefer]
        for ssd_id in order:
            if free[ssd_id]:
                return ssd_id, free[ssd_id].pop(0)
        raise SimulationError("CoW fault: no free chunks on any back end")

    # ------------------------------------------------------------ reporting
    def volume_stat(self, key: str) -> dict:
        """A deterministic, JSON-able description of one volume/snapshot."""
        snap = self.snapshots.get(key)
        if snap is not None:
            chunks = list(snap["chunks"])
            kind, parent = "snapshot", snap["origin"]
            size_bytes = snap["num_blocks"] * LBA_BYTES
        else:
            ens = self.engine.namespaces.get(key)
            if ens is None:
                raise SimulationError(f"no volume or snapshot named {key}")
            self.adopt(key)
            chunks = [tuple(phys) for phys in ens.chunks]
            info = self.volumes[key]
            kind, parent = info["kind"], info["parent"]
            size_bytes = ens.namespace.num_blocks * LBA_BYTES
        shared = sum(1 for phys in chunks
                     if self.refcounts.get(tuple(phys), 1) > 1)
        return {
            "key": key,
            "kind": kind,
            "parent": parent,
            "size_bytes": size_bytes,
            "chunks": len(chunks),
            "shared_chunks": shared,
            "cow_faults": self.faults_by_volume.get(key, 0),
            "snapshots": sorted(
                name for name, s in self.snapshots.items() if s["origin"] == key
            ),
        }

    def stat_all(self) -> list[dict]:
        """Every volume and snapshot, sorted by key (determinism probe)."""
        names = sorted(set(self.volumes) | set(self.snapshots))
        return [self.volume_stat(name) for name in names]
