"""BM-Store core: the BMS-Engine (FPGA datapath) and BMS-Controller (ARM).

This package is the paper's primary contribution:

* :class:`BMSEngine` — SR-IOV layer, target controller, LBA mapping,
  QoS, DMA request routing (zero-copy global PRPs), host adaptor.
* :class:`BMSController` — out-of-band management (MCTP/NVMe-MI),
  I/O monitor, hot-upgrade, hot-plug.
* :class:`FPGAResourceModel` — Table II resource accounting.
"""

from .axi import AXIBus
from .controller import (
    BMSController,
    ControllerTimings,
    HotPlugReport,
    UpgradeReport,
)
from .dma_routing import (
    ADDRESS_MASK,
    FUNCTION_ID_BITS,
    decode_global_prp,
    encode_global_prp,
    is_global_prp,
)
from .engine import BMSEngine, EngineNamespace, EngineTimings
from .fpga_resources import ZU19EG_TOTALS, FPGAResourceModel, FPGAResources
from .host_adaptor import BackendSlot, HostAdaptor
from .lba_mapping import (
    CHUNK_BYTES,
    ENTRIES_PER_ROW,
    ROWS,
    MappingEntry,
    MappingTable,
)
from .qos import QoSLimits, QoSModule
from .sriov_layer import FN_BAR_BYTES, NUM_PFS, NUM_VFS, FrontEndFunction, SRIOVLayer
from .target_controller import AdminRequest, TargetController

__all__ = [
    "AXIBus",
    "BMSController",
    "ControllerTimings",
    "HotPlugReport",
    "UpgradeReport",
    "ADDRESS_MASK",
    "FUNCTION_ID_BITS",
    "decode_global_prp",
    "encode_global_prp",
    "is_global_prp",
    "BMSEngine",
    "EngineNamespace",
    "EngineTimings",
    "ZU19EG_TOTALS",
    "FPGAResourceModel",
    "FPGAResources",
    "BackendSlot",
    "HostAdaptor",
    "CHUNK_BYTES",
    "ENTRIES_PER_ROW",
    "ROWS",
    "MappingEntry",
    "MappingTable",
    "QoSLimits",
    "QoSModule",
    "FN_BAR_BYTES",
    "NUM_PFS",
    "NUM_VFS",
    "FrontEndFunction",
    "SRIOVLayer",
    "AdminRequest",
    "TargetController",
]
