"""Metrics primitives: counters, gauges, log-bucketed histograms.

The registry is deliberately simulation-agnostic: values are plain
numbers (the callers stamp simulated nanoseconds).  Histograms use
geometric buckets with 16 sub-buckets per octave (~4.4% wide), so any
percentile estimate is within one bucket — well under the ±7% the
experiment assertions allow — while an entire latency distribution
costs a handful of dict entries instead of a sample list.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Optional

from .spans import IOSpan, SpanLog

__all__ = ["Counter", "Gauge", "Histogram", "NullHistogram", "MetricsRegistry",
           "OBS_MODES"]

#: supported observability modes, cheapest last
OBS_MODES = ("full", "sampled", "counters")

#: sub-buckets per octave; bucket boundary ratio = 2**(1/16) ~ 1.0443
BUCKETS_PER_OCTAVE = 16
_LOG_GROWTH = math.log(2.0) / BUCKETS_PER_OCTAVE


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (ops, bytes, errors...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, buffered commands...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A log-bucketed distribution with percentile queries.

    ``observe`` costs one dict update; ``percentile`` walks the sorted
    buckets and returns the geometric midpoint of the bucket holding
    the requested rank (max error: half a bucket, ~2.2%).
    """

    __slots__ = ("name", "labels", "_buckets", "_zeros", "count", "total", "_min", "_max")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._buckets: dict[int, int] = {}
        self._zeros = 0  # observations <= 0 (zero-latency fast paths)
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value <= 0:
            self._zeros += 1
            return
        idx = int(math.floor(math.log(value) / _LOG_GROWTH))
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` (0..100], nearest-rank."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * self.count))
        seen = self._zeros
        if rank <= seen:
            return 0.0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if rank <= seen:
                # geometric midpoint of [growth**idx, growth**(idx+1))
                return math.exp((idx + 0.5) * _LOG_GROWTH)
        return self.max  # pragma: no cover - unreachable

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p99.9": self.p999,
            "max": self.max,
        }


class NullHistogram:
    """Observation sink for counters-only mode: same read API as
    :class:`Histogram`, but ``observe`` is a no-op and every statistic
    reads as zero."""

    __slots__ = ("name", "labels")

    count = 0
    total = 0.0
    mean = min = max = p50 = p95 = p99 = p999 = 0.0

    def __init__(self, name: str = "", labels: tuple = ()):
        self.name = name
        self.labels = labels

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {"count": 0, "mean": 0.0, "min": 0.0, "p50": 0.0, "p95": 0.0,
                "p99": 0.0, "p99.9": 0.0, "max": 0.0}


_NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Get-or-create store of named, labeled metrics + the span log.

    One registry measures one run (one simulated world): rigs and the
    datapath layers all write into the same instance, so a snapshot is
    the complete observability picture of that world.

    ``mode`` selects how much the instrumentation taxes the hot path:

    * ``"full"`` (default) — every command carries an :class:`IOSpan`
      and feeds the stage histograms.
    * ``"sampled"`` — only one in ``span_sample`` commands carries a
      span (deterministic modulo counter, so runs stay reproducible);
      histograms still record everything they are handed.
    * ``"counters"`` — no spans at all, and ``histogram()`` hands back
      a shared :class:`NullHistogram`, so per-event instrumentation
      reduces to integer counter bumps.
    """

    def __init__(self, span_capacity: int = 10_000, mode: str = "full",
                 span_sample: int = 16):
        if mode not in OBS_MODES:
            raise ValueError(f"unknown obs mode {mode!r} (known: {OBS_MODES})")
        if span_sample < 1:
            raise ValueError(f"span_sample must be >= 1, got {span_sample}")
        self._metrics: dict[tuple[str, str, tuple], Any] = {}
        self.spans = SpanLog(capacity=span_capacity)
        self.mode = mode
        self.span_sample = 1 if mode == "full" else span_sample
        self._span_tick = 0
        # span-stage histogram handles, resolved once per stage name —
        # finish_span runs per completed I/O and must not rebuild keys
        self._stage_hists: dict[str, Histogram] = {}
        self._h_span_total: Optional[Histogram] = None

    def want_span(self) -> bool:
        """Should the caller allocate an IOSpan for the next command?

        Deterministic: the decision depends only on how many commands
        asked before, never on wall time."""
        if self.mode == "counters":
            return False
        if self.span_sample == 1:
            return True
        self._span_tick += 1
        return self._span_tick % self.span_sample == 1

    # ------------------------------------------------------------- factories
    def _get(self, kind: str, cls, name: str, labels: dict[str, str]):
        key = (kind, name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[2])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        if self.mode == "counters":
            return _NULL_HISTOGRAM
        return self._get("histogram", Histogram, name, labels)

    # ----------------------------------------------------------------- spans
    def finish_span(self, span: IOSpan) -> None:
        """File a completed span: log it + feed the stage histograms."""
        if self.mode == "counters":
            return
        self.spans.add(span)
        if span.faults:
            for kind in span.faults:
                self.counter("span_faults", kind=kind).inc()
        hists = self._stage_hists
        for stage, delta in span.stage_deltas():
            h = hists.get(stage)
            if h is None:
                h = hists[stage] = self.histogram("span_stage_ns", stage=stage)
            h.observe(delta)
        total = span.total_ns()
        if total is not None:
            h = self._h_span_total
            if h is None:
                h = self._h_span_total = self.histogram("span_total_ns")
            h.observe(total)

    # ------------------------------------------------------------- inspection
    def iter_metrics(self) -> Iterator[tuple[str, str, Any]]:
        """Yields (kind, formatted_name, metric) sorted by kind then name."""
        for (kind, name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
        ):
            yield kind, _format_name(name, labels), metric

    def counters(self, name: str) -> dict[tuple[tuple[str, str], ...], Counter]:
        """All counters of one name, keyed by their label tuples."""
        return {
            key[2]: metric
            for key, metric in self._metrics.items()
            if key[0] == "counter" and key[1] == name
        }

    def histograms(self, name: str) -> dict[tuple[tuple[str, str], ...], Histogram]:
        """All histograms of one name, keyed by their label tuples."""
        return {
            key[2]: metric
            for key, metric in self._metrics.items()
            if key[0] == "histogram" and key[1] == name
        }

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable dump of every metric + span accounting."""
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for kind, label, metric in self.iter_metrics():
            if kind == "counter":
                # checker coverage is meta-observability (read it via
                # CheckContext.summary()); keeping it out of snapshots
                # keeps checked runs byte-identical to unchecked runs
                if label.startswith("invariant_checks"):
                    continue
                out["counters"][label] = metric.value
            elif kind == "gauge":
                out["gauges"][label] = metric.value
            else:
                out["histograms"][label] = metric.summary()
        out["spans"] = {
            "recorded": len(self.spans),
            "dropped": self.spans.dropped,
            "complete": sum(1 for s in self.spans if s.is_complete),
        }
        # only present when faults were injected, so fault-free snapshots
        # stay byte-identical to pre-fault-layer output
        with_faults = sum(1 for s in self.spans if s.faults)
        if with_faults:
            out["spans"]["with_faults"] = with_faults
        # likewise: default-mode snapshots keep their historical shape
        if self.mode != "full":
            out["obs_mode"] = self.mode
            if self.mode == "sampled":
                out["span_sample"] = self.span_sample
        return out

    def render_table(self) -> str:
        """Human-readable dump (the ``repro stats`` default output)."""
        lines = []
        snap = self.snapshot()
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(k) for k in snap["counters"])
            for key, value in snap["counters"].items():
                lines.append(f"  {key.ljust(width)}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(k) for k in snap["gauges"])
            for key, value in snap["gauges"].items():
                lines.append(f"  {key.ljust(width)}  {value:g}")
        if snap["histograms"]:
            lines.append("histograms (ns):")
            width = max(len(k) for k in snap["histograms"])
            header = f"  {'name'.ljust(width)}  {'count':>7} {'mean':>10} {'p50':>10} {'p99':>10} {'p99.9':>10} {'max':>10}"
            lines.append(header)
            for key, s in snap["histograms"].items():
                lines.append(
                    f"  {key.ljust(width)}  {s['count']:>7} {s['mean']:>10.0f} "
                    f"{s['p50']:>10.0f} {s['p99']:>10.0f} {s['p99.9']:>10.0f} {s['max']:>10.0f}"
                )
        spans = snap["spans"]
        lines.append(
            f"spans: {spans['recorded']} recorded "
            f"({spans['complete']} complete, {spans['dropped']} dropped)"
        )
        return "\n".join(lines)
