"""Per-command span tracing of the Fig. 6 I/O path.

Every NVMe command submitted by an observed driver carries one
:class:`IOSpan`.  Each layer it crosses stamps a stage timestamp on it:

===============  =============================================  ==================
stage            where it is stamped                            layer
===============  =============================================  ==================
``submit``       driver submission path entry                   ``host/driver.py``
``doorbell``     front doorbell ring wakes the fetch engine     ``core/sriov_layer.py`` -> engine
``fetch``        Target Controller receives the fetched SQE     ``core/target_controller.py``
``lba_map``      LBA mapping translated (eqs. 1-4)              ``core/engine.py`` / ``core/lba_mapping.py``
``qos``          QoS admitted the command (may have buffered)   ``core/qos.py`` (extra stage)
``forward``      back-end command(s) pushed to the adaptor      ``core/engine.py`` (extra stage)
``ssd_dma``      back-end SSD finished media + zero-copy DMA    ``nvme/ssd.py``
``backend_done``  fan-in: every back-end fragment completed     ``core/engine.py`` (extra stage)
``push_exec``    pushdown interpreter finished its program      ``push/manager.py`` (extra stage)
``complete``     CQE relayed into the host completion queue     ``core/engine.py``
``interrupt``    host IRQ path delivered the completion         ``host/driver.py``
===============  =============================================  ==================

The seven stages of :data:`STAGES` are canonical: a span through the
BM-Store datapath is *complete* when all seven are stamped.  The extra
stages refine the breakdown (they are what
``repro.experiments.latency_breakdown`` itemizes) but schemes without
an engine (native, VFIO) legitimately never stamp them.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["STAGES", "STAMP_ORDER", "IOSpan", "SpanLog"]

#: the seven canonical stages every completed BM-Store command stamps
STAGES = (
    "submit",
    "doorbell",
    "fetch",
    "lba_map",
    "ssd_dma",
    "complete",
    "interrupt",
)

#: full stamping order, canonical stages + refinements
STAMP_ORDER = (
    "submit",
    "doorbell",
    "fetch",
    "lba_map",
    "qos",
    "forward",
    "ssd_dma",
    "backend_done",
    "push_exec",
    "complete",
    "interrupt",
)

_ORDER_INDEX = {name: i for i, name in enumerate(STAMP_ORDER)}


class IOSpan:
    """Stage timestamps of one command's trip through the datapath."""

    __slots__ = ("op", "origin", "stamps", "faults")

    def __init__(self, op: str, origin: str = ""):
        self.op = op  # "read" | "write" | "flush" | opcode repr
        self.origin = origin  # submitting driver's name
        self.stamps: dict[str, int] = {}
        self.faults: list[str] = []  # injected-fault kinds this span hit

    def stamp(self, stage: str, time_ns: int) -> None:
        """Record ``stage`` at ``time_ns`` (re-stamping keeps the latest)."""
        self.stamps[stage] = time_ns

    def note_fault(self, kind: str) -> None:
        """Mark this command as having hit an injected fault."""
        self.faults.append(kind)

    def __contains__(self, stage: str) -> bool:
        return stage in self.stamps

    def get(self, stage: str) -> Optional[int]:
        return self.stamps.get(stage)

    @property
    def is_complete(self) -> bool:
        """All seven canonical stages stamped."""
        return all(stage in self.stamps for stage in STAGES)

    @property
    def is_monotone(self) -> bool:
        """Timestamps never decrease along the stamp order."""
        last = None
        for t in self.ordered_stamps():
            if last is not None and t[1] < last:
                return False
            last = t[1]
        return True

    def ordered_stamps(self) -> list[tuple[str, int]]:
        """(stage, time) pairs in datapath order (unknown stages last)."""
        return sorted(
            self.stamps.items(),
            key=lambda kv: (_ORDER_INDEX.get(kv[0], len(STAMP_ORDER)), kv[1]),
        )

    def stage_deltas(self) -> list[tuple[str, int]]:
        """Per-stage durations: each stamped stage labeled with the time
        since the previous stamped stage (the first stage is skipped)."""
        ordered = self.ordered_stamps()
        return [
            (stage, t - ordered[i - 1][1])
            for i, (stage, t) in enumerate(ordered)
            if i > 0
        ]

    def duration_ns(self, start_stage: str, end_stage: str) -> Optional[int]:
        a, b = self.stamps.get(start_stage), self.stamps.get(end_stage)
        if a is None or b is None:
            return None
        return b - a

    def total_ns(self) -> Optional[int]:
        """submit -> interrupt, the host-observed command latency."""
        return self.duration_ns("submit", "interrupt")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        path = "->".join(s for s, _ in self.ordered_stamps())
        return f"<IOSpan {self.op} {path}>"


class SpanLog:
    """Capacity-bounded store of completed spans.

    The first ``capacity`` spans are kept verbatim (enough for any
    per-stage statistic); later arrivals only bump ``dropped`` so
    long runs stay bounded.
    """

    def __init__(self, capacity: int = 10_000):
        self.capacity = capacity
        self._spans: list[IOSpan] = []
        self.dropped = 0

    def add(self, span: IOSpan) -> None:
        if len(self._spans) < self.capacity:
            self._spans.append(span)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[IOSpan]:
        return iter(self._spans)

    def __getitem__(self, index: int) -> IOSpan:
        return self._spans[index]

    def complete(self) -> list[IOSpan]:
        """Spans that stamped every canonical stage."""
        return [s for s in self._spans if s.is_complete]

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0
