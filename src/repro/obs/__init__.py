"""Observability layer: metrics registry + I/O-path span tracing.

The paper's BMS-Controller ships an out-of-band I/O monitor, and the
evaluation leans on per-stage latency breakdowns of the seven-step
datapath (Fig. 6) and tail-latency timelines.  This package is that
measurement substrate for the reproduction:

* :class:`MetricsRegistry` — counters, gauges, and log-bucketed
  latency histograms with p50/p95/p99/p99.9 queries, labeled per
  namespace / per queue / per driver.
* :class:`IOSpan` / :class:`SpanLog` — each NVMe command carries a
  span that stamps the Fig. 6 stages as it moves driver -> SR-IOV
  doorbell -> target-controller fetch -> LBA map -> SSD DMA ->
  completion -> interrupt.

Attach a registry to any rig (``build_bmstore(obs=reg)``) or let
:func:`repro.experiments.run_case` create one per run; read it back as
tables (:meth:`MetricsRegistry.render_table`) or JSON
(:meth:`MetricsRegistry.snapshot`), in-band via the experiment result
or out-of-band through the BMS-Controller's I/O monitor.
"""

from .metrics import (
    OBS_MODES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullHistogram,
)
from .spans import STAGES, IOSpan, SpanLog

__all__ = [
    "OBS_MODES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullHistogram",
    "STAGES",
    "IOSpan",
    "SpanLog",
]
