"""Application substrates: the mini databases the paper's workloads drive."""

from . import minikv, minisql
from .blockfs import Extent, ExtentAllocator

__all__ = ["minikv", "minisql", "Extent", "ExtentAllocator"]
