"""Redo log with group commit (the InnoDB ib_logfile role).

Commits append structured redo records and sync the log ring; multiple
committing transactions share one device write.  Durability ordering —
redo reaches the device before the touched pages do — is what the
checkpointer relies on and what the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...host.block import BlockTarget
from ...sim import Event, SimulationError, Simulator
from ...sim.units import PAGE_SIZE
from ..blockfs import Extent

__all__ = ["RedoRecord", "RedoLog"]

_RECORD_OVERHEAD = 24  # header bytes per record on disk


@dataclass(frozen=True)
class RedoRecord:
    """One durable log record with its logical redo/undo images."""
    lsn: int
    txn_id: int
    page_id: int
    op: str  # "insert" | "update" | "delete" | "commit"
    payload_bytes: int
    #: logical redo/undo images (ARIES-lite): what to reapply on
    #: recovery and how to roll a loser transaction back
    table: Optional[str] = None
    key: object = None
    after: Optional[dict] = None  # row (insert) / changes (update)
    before: Optional[dict] = None  # pre-image (update/delete)


class RedoLog:
    """Ring of log blocks with LSN tracking and group commit."""

    def __init__(self, sim: Simulator, device: BlockTarget, extent: Extent):
        self.sim = sim
        self.device = device
        self.extent = extent
        self._next_lsn = 1
        self._staged: list[RedoRecord] = []
        self._staged_bytes = 0
        self._head_block = 0
        self._pending: Optional[Event] = None
        self._running = False
        self.durable_lsn = 0
        #: the durable content of the log — what recovery reads back
        self.durable_records: list[RedoRecord] = []
        self.synced_blocks = 0
        self.group_commits = 0
        self.records_written = 0

    def append(self, txn_id: int, page_id: int, op: str, payload_bytes: int,
               table: Optional[str] = None, key: object = None,
               after: Optional[dict] = None,
               before: Optional[dict] = None) -> RedoRecord:
        record = RedoRecord(self._next_lsn, txn_id, page_id, op, payload_bytes,
                            table=table, key=key, after=after, before=before)
        self._next_lsn += 1
        self._staged.append(record)
        self._staged_bytes += payload_bytes + _RECORD_OVERHEAD
        return record

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def sync(self) -> Event:
        """Make all staged records durable (group commit)."""
        if self._pending is None:
            self._pending = self.sim.event(name="redo.sync")
        done = self._pending
        if not self._running:
            self._running = True
            self.sim.process(self._sync_proc(), name="redo.syncp")
        return done

    def _sync_proc(self):
        while self._pending is not None:
            done, self._pending = self._pending, None
            batch, self._staged = self._staged, []
            nbytes, self._staged_bytes = self._staged_bytes, 0
            target_lsn = batch[-1].lsn if batch else self.durable_lsn
            nblocks = max(1, -(-nbytes // PAGE_SIZE))
            if self._head_block + nblocks > self.extent.nblocks:
                self._head_block = 0
            lba = self.extent.lba + self._head_block
            self._head_block += nblocks
            info = yield self.device.write(lba, nblocks)
            if not info.ok:
                raise SimulationError("redo log write failed")
            self.durable_lsn = max(self.durable_lsn, target_lsn)
            self.durable_records.extend(batch)
            self.synced_blocks += nblocks
            self.group_commits += 1
            self.records_written += len(batch)
            done.succeed()
        self._running = False

    def is_durable(self, lsn: int) -> bool:
        return lsn <= self.durable_lsn
