"""MiniSQL: a transactional page-based table engine (the MySQL/InnoDB
stand-in for TPC-C and Sysbench).

Write path: row changes dirty buffer-pool pages and append redo
records; COMMIT group-commits the redo log.  A background checkpointer
writes dirty pages back, always behind the redo log (the write-ahead
barrier).  Read path: point/range selects fetch pages through the
buffer pool — misses are the random reads the paper's MySQL workloads
throw at the storage schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ...host.block import BlockTarget
from ...sim import SimulationError, Simulator
from ...sim.units import MS
from ..blockfs import Extent
from .buffer_pool import BufferPool
from .pages import PAGE_BLOCKS, Page, PageStore
from .redo import RedoLog
from .table import Table, TableSchema

__all__ = ["MiniSQLConfig", "Transaction", "MiniSQL"]


@dataclass(frozen=True)
class MiniSQLConfig:
    """Tuning knobs of one MiniSQL instance."""
    buffer_pool_pages: int = 512
    redo_ring_blocks: int = 8192
    #: CPU time per SQL statement (parse/plan/execute) and per row
    #: returned by range scans — what keeps storage latency from being
    #: the whole transaction, as in real MySQL
    stmt_cpu_ns: int = 50_000
    row_cpu_ns: int = 1_500
    checkpoint_interval_ns: int = 10 * MS
    checkpoint_dirty_fraction: float = 0.25
    max_tablespace_pages: int = 1 << 20
    #: fetch buffer-pool misses through an installed pushdown filter
    #: program (requires :meth:`MiniSQL.install_pushdown`)
    pushdown_reads: bool = False


class Transaction:
    """One open transaction."""

    _ids = 0

    def __init__(self, engine: "MiniSQL"):
        Transaction._ids += 1
        self.txn_id = Transaction._ids
        self.engine = engine
        self.sim = engine.sim
        self.writes = 0
        self.reads = 0
        self.last_lsn = 0
        self.committed = False
        self.started_ns = engine.sim.now

    # ----------------------------------------------------------------- writes
    def _stmt_cpu(self):
        cpu = self.engine.config.stmt_cpu_ns
        if cpu:
            yield self.sim.timeout(cpu)

    def insert(self, table: str, row: dict[str, Any]):
        yield from self._stmt_cpu()
        tbl = self.engine.table(table)
        page = yield from tbl.insert(row)
        self._log(page, "insert", tbl.schema.avg_row_bytes,
                  table=table, key=row[tbl.schema.key_column], after=dict(row))

    def update(self, table: str, key: Any, changes: dict[str, Any]):
        yield from self._stmt_cpu()
        tbl = self.engine.table(table)
        page, before = yield from tbl.update(key, changes)
        if page is None:
            return False
        self._log(page, "update", tbl.schema.avg_row_bytes // 2,
                  table=table, key=key, after=dict(changes), before=before)
        return True

    def delete(self, table: str, key: Any):
        yield from self._stmt_cpu()
        tbl = self.engine.table(table)
        page, before = yield from tbl.delete(key)
        if page is None:
            return False
        self._log(page, "delete", 32, table=table, key=key, before=before)
        return True

    def _log(self, page: Optional[Page], op: str, nbytes: int,
             table: Optional[str] = None, key: Any = None,
             after: Optional[dict] = None, before: Optional[dict] = None) -> None:
        if self.committed:
            raise SimulationError("write after commit")
        record = self.engine.redo.append(self.txn_id, page.page_id if page else -1,
                                         op, nbytes, table=table, key=key,
                                         after=after, before=before)
        if page is not None:
            page.lsn = record.lsn
        self.last_lsn = record.lsn
        self.writes += 1

    # ------------------------------------------------------------------ reads
    def select(self, table: str, key: Any):
        yield from self._stmt_cpu()
        self.reads += 1
        row = yield from self.engine.table(table).select(key)
        return row

    def select_range(self, table: str, start_key: Any, limit: int = 100):
        yield from self._stmt_cpu()
        self.reads += 1
        rows = yield from self.engine.table(table).select_range(start_key, limit)
        row_cpu = self.engine.config.row_cpu_ns * len(rows)
        if row_cpu:
            yield self.sim.timeout(row_cpu)
        return rows

    # ----------------------------------------------------------------- commit
    def commit(self):
        """Process generator: durable commit via redo group commit."""
        if self.committed:
            return
        self.committed = True
        if self.writes:
            self.engine.redo.append(self.txn_id, -1, "commit", 16)
            yield self.engine.redo.sync()
        self.engine.committed_txns += 1
        self.engine.total_txn_latency_ns += self.sim.now - self.started_ns


class MiniSQL:
    """The database engine on one block device."""

    def __init__(
        self,
        sim: Simulator,
        device: BlockTarget,
        config: MiniSQLConfig = MiniSQLConfig(),
        name: str = "minisql",
    ):
        self.sim = sim
        self.device = device
        self.config = config
        self.name = name
        self.redo = RedoLog(sim, device, Extent(0, config.redo_ring_blocks))
        max_pages = min(
            config.max_tablespace_pages,
            (device.num_blocks - config.redo_ring_blocks) // PAGE_BLOCKS,
        )
        self.store = PageStore(base_lba=config.redo_ring_blocks, max_pages=max_pages)
        self.pool = BufferPool(sim, device, self.store, config.buffer_pool_pages)
        self.pool.write_barrier = self._write_barrier
        self.tables: dict[str, Table] = {}
        self.committed_txns = 0
        self.total_txn_latency_ns = 0
        self._checkpointer = None
        self.pushdown_fetches = 0
        self.pushdown_fallbacks = 0

    # ------------------------------------------------------------------ DDL
    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise SimulationError(f"table {schema.name} exists")
        table = Table(schema, self.pool, self.store)
        self.tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        table = self.tables.get(name)
        if table is None:
            raise SimulationError(f"no table {name}")
        return table

    # ----------------------------------------------------------- transactions
    def begin(self) -> Transaction:
        return Transaction(self)

    def autocommit(self, gen):
        """Process generator: run one-statement transaction."""
        txn = self.begin()
        result = yield from gen(txn)
        yield from txn.commit()
        return result

    # ------------------------------------------------------------- pushdown
    def install_pushdown(self):
        """Process generator: install the page filter program.

        Its windows cover the tablespace only — the redo ring stays
        outside the sandbox — and buffer-pool misses are then fetched
        through one vendor command each instead of a mediated read.
        """
        from ...push import filter_program

        install = getattr(self.device, "install_push_program", None)
        if install is None:
            raise SimulationError(f"{self.name}: device has no pushdown path")
        windows = [[self.config.redo_ring_blocks,
                    self.device.num_blocks - self.config.redo_ring_blocks]]
        info = yield install(filter_program(windows))
        if getattr(info, "ok", False) and self.config.pushdown_reads:
            self.pool.pushdown_read = self._pushdown_fetch
        return info

    def _pushdown_fetch(self, lba: int):
        """Process generator: one page's blocks via the filter program,
        falling back to the mediated read if the device refuses."""
        info = yield self.device.push_exec(
            {"carry": False, "base_lba": lba, "nblocks": PAGE_BLOCKS})
        if info.ok:
            self.pushdown_fetches += 1
            return info
        self.pushdown_fallbacks += 1
        info = yield self.device.read(lba, PAGE_BLOCKS)
        return info

    # -------------------------------------------------------------- WAL rule
    def _write_barrier(self, page: Page):
        """Redo must be durable past the page's LSN before writeback."""
        if page.lsn > self.redo.durable_lsn:
            yield self.redo.sync()

    # ----------------------------------------------------------- checkpointer
    def start_checkpointer(self) -> None:
        if self._checkpointer is not None:
            return
        self._checkpointer = self.sim.process(
            self._checkpoint_loop(), name=f"{self.name}.ckpt"
        )

    def _checkpoint_loop(self):
        while True:
            yield self.sim.timeout(self.config.checkpoint_interval_ns)
            dirty = self.pool.dirty_pages()
            threshold = self.config.checkpoint_dirty_fraction * self.pool.capacity
            if len(dirty) < max(1, threshold):
                continue
            for page in dirty:
                if page.dirty:
                    yield from self.pool.flush_page(page)

    # -------------------------------------------------------------- reporting
    @property
    def avg_txn_latency_ns(self) -> float:
        if not self.committed_txns:
            return 0.0
        return self.total_txn_latency_ns / self.committed_txns
