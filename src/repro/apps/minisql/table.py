"""Tables with a clustered primary-key index.

Rows live in pages; the primary index maps key -> (page_id, slot).
Index nodes are modeled memory-resident (the hot-index approximation —
InnoDB's non-leaf B-tree levels are effectively always cached), while
every *row* access goes through the buffer pool and thus the device.
Range access walks the ordered index.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ...sim import SimulationError
from .buffer_pool import BufferPool
from .pages import PageStore

__all__ = ["TableSchema", "Table", "SortedKeyIndex"]


class SortedKeyIndex:
    """Ordered map with items_from() iteration (bisect-backed)."""

    def __init__(self) -> None:
        self._keys: list = []
        self._map: dict = {}

    def put(self, key, value) -> None:
        if key not in self._map:
            bisect.insort(self._keys, key)
        self._map[key] = value

    def get(self, key):
        return self._map.get(key)

    def pop(self, key):
        value = self._map.pop(key, None)
        if value is not None:
            idx = bisect.bisect_left(self._keys, key)
            if idx < len(self._keys) and self._keys[idx] == key:
                self._keys.pop(idx)
        return value

    def items_from(self, start_key) -> Iterator:
        idx = bisect.bisect_left(self._keys, start_key)
        for key in list(self._keys[idx:]):
            value = self._map.get(key)
            if value is not None:  # deleted by a concurrent transaction
                yield key, value

    def __len__(self) -> int:
        return len(self._map)


@dataclass(frozen=True)
class TableSchema:
    """Column layout, key column, and page-packing parameters."""
    name: str
    key_column: str
    columns: tuple[str, ...]
    rows_per_page: int = 64
    avg_row_bytes: int = 200

    def validate(self, row: dict[str, Any]) -> None:
        missing = set(self.columns) - set(row)
        if missing:
            raise SimulationError(f"{self.name}: row missing columns {missing}")
        if self.key_column not in row:
            raise SimulationError(f"{self.name}: row missing key")


class Table:
    """One table in a tablespace."""

    def __init__(self, schema: TableSchema, pool: BufferPool, store: PageStore):
        self.schema = schema
        self.pool = pool
        self.store = store
        self.index = SortedKeyIndex()
        self._open_page: Optional[int] = None
        self.row_count = 0

    # ---------------------------------------------------------------- insert
    def insert(self, row: dict[str, Any]):
        """Process generator: place the row and index it (no logging —
        the engine wraps this in a transaction)."""
        self.schema.validate(row)
        key = row[self.schema.key_column]
        if self.index.get(key) is not None:
            raise SimulationError(f"{self.schema.name}: duplicate key {key!r}")
        if self._open_page is None:
            self._open_page = self.store.allocate_page(owner=self.schema.name)
        page = yield from self.pool.fetch(self._open_page)
        try:
            if page.slot_count >= self.schema.rows_per_page:
                self.pool.unpin(page)
                self._open_page = self.store.allocate_page(owner=self.schema.name)
                page = yield from self.pool.fetch(self._open_page)
            slot = page.slot_count
            page.rows[slot] = dict(row)
            page.dirty = True
            self.index.put(key, (page.page_id, slot))
            self.row_count += 1
            return page
        finally:
            self.pool.unpin(page)

    # ----------------------------------------------------------------- point
    def select(self, key: Any):
        """Process generator: the row dict or None."""
        loc = self.index.get(key)
        if loc is None:
            return None
        page_id, slot = loc
        page = yield from self.pool.fetch(page_id)
        try:
            row = page.rows.get(slot)
            return dict(row) if row is not None else None
        finally:
            self.pool.unpin(page)

    def update(self, key: Any, changes: dict[str, Any]):
        """Process generator: apply changes; returns (page, before) or
        (None, None) — the before-image feeds the undo log."""
        loc = self.index.get(key)
        if loc is None:
            return None, None
        page_id, slot = loc
        page = yield from self.pool.fetch(page_id)
        try:
            row = page.rows.get(slot)
            if row is None:
                return None, None
            before = {col: row[col] for col in changes if col in row}
            row.update(changes)
            page.dirty = True
            return page, before
        finally:
            self.pool.unpin(page)

    def delete(self, key: Any):
        """Process generator: remove the row; returns (page, before_row)
        or (None, None)."""
        loc = self.index.pop(key)
        if loc is None:
            return None, None
        page_id, slot = loc
        page = yield from self.pool.fetch(page_id)
        try:
            before = page.rows.pop(slot, None)
            if before is not None:
                page.dirty = True
                self.row_count -= 1
            return page, before
        finally:
            self.pool.unpin(page)

    # ----------------------------------------------------------------- range
    def select_range(self, start_key: Any, limit: int):
        """Process generator: up to ``limit`` rows from start_key upward."""
        rows = []
        for key, (page_id, slot) in self.index.items_from(start_key):
            if len(rows) >= limit:
                break
            page = yield from self.pool.fetch(page_id)
            try:
                row = page.rows.get(slot)
                if row is not None:
                    rows.append(dict(row))
            finally:
                self.pool.unpin(page)
        return rows
