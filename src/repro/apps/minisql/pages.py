"""Pages and the on-disk page store of the table engine.

Pages are 16 KiB (4 device blocks), InnoDB's default.  Row content is
kept as structured objects; the *disk image* of each page is shadowed
in the page store so buffer-pool evictions and re-reads are faithful
(writeback persists the snapshot, a later miss restores it) while the
device charges real transfer timing.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Optional

from ...sim import SimulationError

__all__ = ["PAGE_BLOCKS", "PAGE_BYTES", "Page", "PageStore"]

PAGE_BLOCKS = 4
PAGE_BYTES = PAGE_BLOCKS * 4096


@dataclass
class Page:
    """A buffer-pool resident page."""

    page_id: int
    rows: dict[int, dict[str, Any]] = field(default_factory=dict)
    dirty: bool = False
    lsn: int = 0  # last redo record touching this page
    pins: int = 0

    @property
    def slot_count(self) -> int:
        return len(self.rows)


class PageStore:
    """Device-side page images + page allocation for one tablespace."""

    def __init__(self, base_lba: int, max_pages: int):
        self.base_lba = base_lba
        self.max_pages = max_pages
        self._images: dict[int, dict[int, dict[str, Any]]] = {}
        self._next_page = 0
        self.flushed_lsn: dict[int, int] = {}
        #: page -> owning table (the data dictionary; durable metadata)
        self.page_owner: dict[int, str] = {}

    def allocate_page(self, owner: Optional[str] = None) -> int:
        if self._next_page >= self.max_pages:
            raise SimulationError("tablespace full")
        page_id = self._next_page
        self._next_page += 1
        if owner is not None:
            self.page_owner[page_id] = owner
        return page_id

    def image_of(self, page_id: int) -> dict[int, dict[str, Any]]:
        """Last persisted rows of a page (recovery's view of the disk)."""
        return copy.deepcopy(self._images.get(page_id, {}))

    @property
    def allocated_pages(self) -> int:
        return self._next_page

    def lba_of(self, page_id: int) -> int:
        return self.base_lba + page_id * PAGE_BLOCKS

    def writeback(self, page: Page) -> None:
        """Persist the page snapshot (called after the device write)."""
        self._images[page.page_id] = copy.deepcopy(page.rows)
        self.flushed_lsn[page.page_id] = page.lsn

    def load(self, page_id: int) -> Page:
        """Materialize a page from its last persisted image."""
        rows = copy.deepcopy(self._images.get(page_id, {}))
        return Page(page_id=page_id, rows=rows, lsn=self.flushed_lsn.get(page_id, 0))
