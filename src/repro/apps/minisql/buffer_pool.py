"""Buffer pool: LRU page cache with dirty writeback.

The knob that turns Sysbench/TPC-C into disk workloads: when the
working set exceeds the pool, point selects become random page reads
and the checkpointer's writebacks become random writes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ...host.block import BlockTarget
from ...sim import SimulationError, Simulator
from .pages import PAGE_BLOCKS, Page, PageStore

__all__ = ["BufferPool", "BufferPoolStats"]


class BufferPoolStats:
    """Hit/miss/eviction/writeback counters of the pool."""
    __slots__ = ("hits", "misses", "evictions", "dirty_writebacks", "reads", "writes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0
        self.reads = 0
        self.writes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0


class BufferPool:
    """Fixed-capacity LRU of :class:`Page` objects."""

    def __init__(
        self,
        sim: Simulator,
        device: BlockTarget,
        store: PageStore,
        capacity_pages: int,
    ):
        if capacity_pages < 2:
            raise SimulationError("buffer pool needs at least 2 pages")
        self.sim = sim
        self.device = device
        self.store = store
        self.capacity = capacity_pages
        self._pages: OrderedDict[int, Page] = OrderedDict()
        self.stats = BufferPoolStats()
        #: write-ahead barrier: a generator hook run before any dirty
        #: page reaches the device (the engine syncs redo up to page.lsn)
        self.write_barrier = None
        #: optional generator hook replacing the miss read — the engine
        #: points it at an installed pushdown filter program
        self.pushdown_read = None

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def dirty_count(self) -> int:
        return sum(1 for p in self._pages.values() if p.dirty)

    def dirty_pages(self) -> list[Page]:
        return [p for p in self._pages.values() if p.dirty]

    # ------------------------------------------------------------------ fetch
    def fetch(self, page_id: int):
        """Process generator: pin the page, reading it on a miss."""
        page = self._pages.get(page_id)
        if page is not None:
            self._pages.move_to_end(page_id)
            self.stats.hits += 1
            page.pins += 1
            return page
        self.stats.misses += 1
        yield from self._make_room()
        if self.pushdown_read is not None:
            info = yield from self.pushdown_read(self.store.lba_of(page_id))
        else:
            info = yield self.device.read(self.store.lba_of(page_id), PAGE_BLOCKS)
        if not info.ok:
            raise SimulationError(f"page {page_id} read failed")
        self.stats.reads += 1
        page = self.store.load(page_id)
        page.pins += 1
        self._pages[page_id] = page
        return page

    def unpin(self, page: Page) -> None:
        if page.pins <= 0:
            raise SimulationError(f"unpin of unpinned page {page.page_id}")
        page.pins -= 1

    def _make_room(self):
        while len(self._pages) >= self.capacity:
            victim = self._pick_victim()
            if victim is None:
                raise SimulationError("buffer pool: all pages pinned")
            if victim.dirty:
                yield from self.flush_page(victim)
            self._pages.pop(victim.page_id, None)
            self.stats.evictions += 1

    def _pick_victim(self) -> Optional[Page]:
        for page in self._pages.values():  # LRU order
            if page.pins == 0:
                return page
        return None

    # ------------------------------------------------------------------ flush
    def flush_page(self, page: Page):
        """Process generator: write one dirty page back."""
        if not page.dirty:
            return
        if self.write_barrier is not None:
            yield from self.write_barrier(page)
        info = yield self.device.write(self.store.lba_of(page.page_id), PAGE_BLOCKS)
        if not info.ok:
            raise SimulationError(f"page {page.page_id} writeback failed")
        page.dirty = False
        self.store.writeback(page)
        self.stats.writes += 1
        self.stats.dirty_writebacks += 1

    def flush_all(self):
        """Process generator: checkpoint every dirty page."""
        for page in list(self._pages.values()):
            if page.dirty:
                yield from self.flush_page(page)
