"""Crash recovery for MiniSQL — ARIES-lite.

``crash_and_recover`` models a power cut: every volatile structure
(buffer pool, indexes, open transactions) is gone; what survives is the
page store's last written images, the durable prefix of the redo log,
and the data dictionary (page ownership).  Recovery then runs the three
classic passes:

1. **analysis** — find winner transactions (those whose commit record
   reached the durable log);
2. **redo** — reapply winner records not yet reflected in the page
   images (per-page flushed LSN decides);
3. **undo** — roll back loser changes that *did* leak to disk via
   dirty-page writebacks, using the records' before-images.

The recovered engine materializes the resulting logical state into
fresh pages (timed through the buffer pool, so recovery costs simulated
I/O like a real restart does).
"""

from __future__ import annotations

from typing import Any, Optional

from .engine import MiniSQL
from .redo import RedoRecord

__all__ = ["RecoveryReport", "crash_and_recover"]


class RecoveryReport:
    """What the recovery pass did (for tests and operators)."""

    def __init__(self) -> None:
        self.winners: set[int] = set()
        self.losers: set[int] = set()
        self.redone = 0
        self.undone = 0
        self.rows_recovered = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RecoveryReport winners={len(self.winners)} losers={len(self.losers)} "
            f"redone={self.redone} undone={self.undone} rows={self.rows_recovered}>"
        )


def _base_state_from_disk(crashed: MiniSQL) -> dict[str, dict[Any, dict]]:
    """Logical per-table state as the page images recorded it."""
    state: dict[str, dict[Any, dict]] = {name: {} for name in crashed.tables}
    for page_id, owner in crashed.store.page_owner.items():
        schema = crashed.tables[owner].schema
        for row in crashed.store.image_of(page_id).values():
            state[owner][row[schema.key_column]] = dict(row)
    return state


def _record_reflected_on_disk(crashed: MiniSQL, record: RedoRecord) -> bool:
    return record.lsn <= crashed.store.flushed_lsn.get(record.page_id, 0)


def crash_and_recover(crashed: MiniSQL, report: Optional[RecoveryReport] = None):
    """Process generator: returns the recovered :class:`MiniSQL`.

    Drive with ``new_db = yield from crash_and_recover(db)`` inside a
    simulation process.
    """
    report = report if report is not None else RecoveryReport()
    records = list(crashed.redo.durable_records)

    # ---- pass 1: analysis ------------------------------------------------
    report.winners = {r.txn_id for r in records if r.op == "commit"}
    report.losers = {
        r.txn_id for r in records if r.op != "commit" and r.txn_id not in report.winners
    }

    # ---- disk state + pass 2: redo ----------------------------------------
    state = _base_state_from_disk(crashed)

    def apply_forward(rec: RedoRecord) -> None:
        table_state = state[rec.table]
        if rec.op == "insert":
            table_state[rec.key] = dict(rec.after or {})
        elif rec.op == "update":
            row = table_state.setdefault(rec.key, {})
            row.update(rec.after or {})
        elif rec.op == "delete":
            table_state.pop(rec.key, None)

    for rec in records:
        if rec.op == "commit" or rec.table is None:
            continue
        if rec.txn_id not in report.winners:
            continue
        if _record_reflected_on_disk(crashed, rec):
            continue  # the page image already contains it
        apply_forward(rec)
        report.redone += 1

    # ---- pass 3: undo leaked loser changes ---------------------------------
    for rec in reversed(records):
        if rec.op == "commit" or rec.table is None:
            continue
        if rec.txn_id not in report.losers:
            continue
        if not _record_reflected_on_disk(crashed, rec):
            continue  # never reached disk; nothing leaked
        table_state = state[rec.table]
        if rec.op == "insert":
            table_state.pop(rec.key, None)
        elif rec.op == "update":
            row = table_state.get(rec.key)
            if row is not None and rec.before is not None:
                row.update(rec.before)
        elif rec.op == "delete":
            if rec.before is not None:
                table_state[rec.key] = dict(rec.before)
        report.undone += 1

    # ---- materialize a fresh engine on the same device ---------------------
    recovered = MiniSQL(crashed.sim, crashed.device, crashed.config,
                        name=f"{crashed.name}.recovered")
    for name, table in crashed.tables.items():
        recovered.create_table(table.schema)
    for name, rows in state.items():
        table = recovered.table(name)
        for key in sorted(rows, key=repr):
            yield from table.insert(rows[key])
            report.rows_recovered += 1
    # checkpoint the rebuilt state so the new log starts clean
    yield from recovered.pool.flush_all()
    return recovered
