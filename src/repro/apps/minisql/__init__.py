"""MiniSQL: transactional page engine (MySQL/InnoDB stand-in)."""

from .buffer_pool import BufferPool, BufferPoolStats
from .engine import MiniSQL, MiniSQLConfig, Transaction
from .pages import PAGE_BLOCKS, PAGE_BYTES, Page, PageStore
from .recovery import RecoveryReport, crash_and_recover
from .redo import RedoLog, RedoRecord
from .table import SortedKeyIndex, Table, TableSchema

__all__ = [
    "BufferPool",
    "BufferPoolStats",
    "MiniSQL",
    "MiniSQLConfig",
    "Transaction",
    "PAGE_BLOCKS",
    "PAGE_BYTES",
    "Page",
    "PageStore",
    "RecoveryReport",
    "crash_and_recover",
    "RedoLog",
    "RedoRecord",
    "SortedKeyIndex",
    "Table",
    "TableSchema",
]
