"""Crash recovery for MiniKV: MANIFEST restore + WAL replay.

A crash loses the memtable and any WAL tail that was never synced.
What survives on the device: every SSTable (immutable once written),
the MANIFEST metadata (level layout + the sequence number flushes have
covered), and the synced prefix of the WAL ring.  Recovery reopens the
store from the manifest and replays durable WAL records newer than the
flushed-through sequence into a fresh memtable — RocksDB's restart
sequence.
"""

from __future__ import annotations

import copy
from typing import Optional

from .db import MiniKV

__all__ = ["KVRecoveryReport", "crash_and_recover_kv"]


class KVRecoveryReport:
    """What the LSM recovery pass restored and replayed."""
    def __init__(self) -> None:
        self.tables_restored = 0
        self.wal_records_scanned = 0
        self.wal_records_replayed = 0
        self.wal_blocks_read = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<KVRecoveryReport tables={self.tables_restored} "
            f"replayed={self.wal_records_replayed}/{self.wal_records_scanned}>"
        )


def crash_and_recover_kv(
    crashed: MiniKV, report: Optional[KVRecoveryReport] = None
):
    """Process generator: returns the recovered :class:`MiniKV`."""
    report = report if report is not None else KVRecoveryReport()

    recovered = MiniKV(crashed.sim, crashed.device, crashed.config,
                       name=f"{crashed.name}.recovered")
    # MANIFEST restore: level layout and immutable tables survive
    recovered.levels = [list(level) for level in crashed.levels]
    recovered.allocator = copy.copy(crashed.allocator)
    recovered._next_table_id = crashed._next_table_id
    recovered.flushed_through_seq = crashed.flushed_through_seq
    report.tables_restored = sum(len(level) for level in recovered.levels)

    # WAL replay: read back the synced ring region (timed), then apply
    # records beyond the flushed-through sequence to a fresh memtable
    durable = list(crashed.wal.durable_records)
    report.wal_records_scanned = len(durable)
    blocks_to_scan = min(crashed.wal.synced_blocks, crashed.wal.extent.nblocks)
    offset = 0
    while offset < blocks_to_scan:
        chunk = min(64, blocks_to_scan - offset)
        yield crashed.device.read(crashed.wal.extent.lba + offset, chunk)
        report.wal_blocks_read += chunk
        offset += chunk

    max_seq = crashed.flushed_through_seq
    for key, value, seq in durable:
        max_seq = max(max_seq, seq)
        if seq <= crashed.flushed_through_seq:
            continue  # already covered by a flushed SSTable
        recovered.memtable.put(key, value, seq)
        report.wal_records_replayed += 1
    recovered._sequence = max_seq
    return recovered
