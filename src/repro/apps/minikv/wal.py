"""Write-ahead log with group commit.

Every put/delete is appended to an in-memory tail; a commit (``sync``)
pads the tail to block granularity and writes it to the WAL ring on the
device.  Concurrent committers share one device write (group commit) —
the mechanism that makes LSM write throughput block-append-shaped.
"""

from __future__ import annotations

from typing import Optional

from ...host.block import BlockTarget
from ...sim import Event, SimulationError, Simulator
from ...sim.units import PAGE_SIZE
from ..blockfs import Extent
from .encoding import encode_record

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """A ring of blocks on the device holding framed records."""

    def __init__(
        self,
        sim: Simulator,
        device: BlockTarget,
        extent: Extent,
        carry_data: bool = False,
    ):
        self.sim = sim
        self.device = device
        self.extent = extent
        self.carry_data = carry_data
        self._head_block = 0  # next ring block to write
        self._tail = bytearray()
        self._staged_records: list[tuple[bytes, bytes, int]] = []
        self._pending_sync: Optional[Event] = None
        self._sync_running = False
        self.appended_records = 0
        self.synced_blocks = 0
        self.group_commits = 0
        #: durable record stream — what post-crash replay reads back
        self.durable_records: list[tuple[bytes, bytes, int]] = []

    def append(self, key: bytes, value: bytes, sequence: int) -> None:
        """Stage one record in the log tail (memory only)."""
        self._tail += encode_record(key, value, sequence)
        self._staged_records.append((key, value, sequence))
        self.appended_records += 1

    def sync(self) -> Event:
        """Durably write the staged tail; joins any in-flight group."""
        if self._pending_sync is None:
            self._pending_sync = self.sim.event(name="wal.sync")
        done = self._pending_sync
        if not self._sync_running:
            self._sync_running = True
            self.sim.process(self._sync_proc(), name="wal.syncp")
        return done

    def _sync_proc(self):
        while self._pending_sync is not None:
            done, self._pending_sync = self._pending_sync, None
            blob, self._tail = bytes(self._tail), bytearray()
            batch, self._staged_records = self._staged_records, []
            nblocks = max(1, -(-len(blob) // PAGE_SIZE))
            if nblocks > self.extent.nblocks:
                raise SimulationError("WAL batch exceeds the whole ring")
            payload = (
                blob.ljust(nblocks * PAGE_SIZE, b"\0") if self.carry_data else None
            )
            lba = self._ring_lba(nblocks)
            info = yield self.device.write(lba, nblocks, payload=payload)
            if not info.ok:
                raise SimulationError("WAL write failed")
            self.synced_blocks += nblocks
            self.group_commits += 1
            self.durable_records.extend(batch)
            done.succeed()
        self._sync_running = False

    def _ring_lba(self, nblocks: int) -> int:
        if self._head_block + nblocks > self.extent.nblocks:
            self._head_block = 0  # wrap (old entries are checkpointed)
        lba = self.extent.lba + self._head_block
        self._head_block += nblocks
        return lba

    @property
    def staged_bytes(self) -> int:
        return len(self._tail)
