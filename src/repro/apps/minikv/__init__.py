"""MiniKV: LSM-tree key-value store (the RocksDB stand-in for YCSB)."""

from .bloom import BloomFilter
from .db import MiniKV, MiniKVConfig, MiniKVStats
from .encoding import TOMBSTONE, decode_records, encode_record, record_size
from .memtable import MemTable
from .recovery import KVRecoveryReport, crash_and_recover_kv
from .sstable import SSTable, SSTableWriter
from .wal import WriteAheadLog

__all__ = [
    "BloomFilter",
    "MiniKV",
    "MiniKVConfig",
    "MiniKVStats",
    "TOMBSTONE",
    "decode_records",
    "encode_record",
    "record_size",
    "MemTable",
    "KVRecoveryReport",
    "crash_and_recover_kv",
    "SSTable",
    "SSTableWriter",
    "WriteAheadLog",
]
