"""In-memory write buffer of the LSM store."""

from __future__ import annotations

from typing import Iterator, Optional

from .encoding import TOMBSTONE, record_size

__all__ = ["MemTable"]


class MemTable:
    """Sorted-on-demand mutable table; sized by encoded bytes."""

    def __init__(self, flush_threshold_bytes: int = 4 * 1024 * 1024):
        self.flush_threshold = flush_threshold_bytes
        self._data: dict[bytes, tuple[bytes, int]] = {}
        self.bytes_used = 0

    def put(self, key: bytes, value: bytes, sequence: int) -> None:
        old = self._data.get(key)
        if old is not None:
            self.bytes_used -= record_size(key, old[0])
        self._data[key] = (value, sequence)
        self.bytes_used += record_size(key, value)

    def delete(self, key: bytes, sequence: int) -> None:
        self.put(key, TOMBSTONE, sequence)

    def get(self, key: bytes) -> Optional[tuple[bytes, int]]:
        """Returns (value, sequence); value may be the tombstone."""
        return self._data.get(key)

    @property
    def should_flush(self) -> bool:
        return self.bytes_used >= self.flush_threshold

    def __len__(self) -> int:
        return len(self._data)

    def sorted_items(self) -> Iterator[tuple[bytes, bytes, int]]:
        for key in sorted(self._data):
            value, sequence = self._data[key]
            yield key, value, sequence

    def scan(self, start: bytes, end: bytes) -> Iterator[tuple[bytes, bytes, int]]:
        for key in sorted(self._data):
            if start <= key < end:
                value, sequence = self._data[key]
                yield key, value, sequence
