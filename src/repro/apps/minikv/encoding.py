"""Record encoding for the LSM store: WAL records and SST blocks.

Length-prefixed binary framing so records survive block packing and
partial-block reads exactly like an on-disk format must.
"""

from __future__ import annotations

import struct
from typing import Iterator

__all__ = [
    "encode_record",
    "decode_records",
    "record_size",
    "TOMBSTONE",
]

#: value sentinel for deletions
TOMBSTONE = b"\x00__tombstone__\x00"

_HEADER = struct.Struct("<IIQ")  # key_len, value_len, sequence


def record_size(key: bytes, value: bytes) -> int:
    """On-disk bytes one framed record occupies."""
    return _HEADER.size + len(key) + len(value)


def encode_record(key: bytes, value: bytes, sequence: int) -> bytes:
    """One framed record: header + key + value."""
    if not key:
        raise ValueError("empty key")
    return _HEADER.pack(len(key), len(value), sequence) + key + value


def decode_records(blob: bytes) -> Iterator[tuple[bytes, bytes, int]]:
    """Yield (key, value, sequence) until padding/garbage is reached."""
    offset = 0
    while offset + _HEADER.size <= len(blob):
        key_len, value_len, sequence = _HEADER.unpack_from(blob, offset)
        if key_len == 0:
            return  # zero padding marks end-of-block
        offset += _HEADER.size
        if offset + key_len + value_len > len(blob):
            return  # truncated tail (torn write)
        key = blob[offset : offset + key_len]
        offset += key_len
        value = blob[offset : offset + value_len]
        offset += value_len
        yield key, value, sequence
