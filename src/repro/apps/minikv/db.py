"""MiniKV: a leveled LSM-tree key-value store (the RocksDB stand-in).

The full write path — WAL group commit, memtable, flush to L0,
leveled background compaction — and the full read path — memtable,
L0 newest-first, leveled binary search, bloom filters, block reads —
run against the simulated block device, so YCSB on MiniKV exercises the
storage schemes with genuine LSM I/O patterns (log appends, sequential
flushes, compaction read/write bursts, random point reads).

All methods are process generators: drive them with ``yield from``
inside a simulation process.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from ...host.block import BlockTarget
from ...sim import Event, SimulationError, Simulator
from ...sim.units import MIB
from ..blockfs import ExtentAllocator
from .encoding import TOMBSTONE, decode_records
from .memtable import MemTable
from .sstable import SSTable, SSTableWriter
from .wal import WriteAheadLog

__all__ = ["MiniKVConfig", "MiniKVStats", "MiniKV"]


@dataclass(frozen=True)
class MiniKVConfig:
    """Tuning knobs of one MiniKV instance."""
    memtable_bytes: int = 2 * MIB
    l0_compaction_trigger: int = 4
    level_size_multiplier: int = 8
    max_levels: int = 5
    target_table_bytes: int = 2 * MIB
    wal_ring_blocks: int = 8192
    #: carry real bytes through the device (integrity mode) or keep
    #: authoritative copies in memory and charge timing only
    carry_data: bool = False
    sync_writes: bool = True
    #: CPU time per client operation (memtable/index work)
    op_cpu_ns: int = 2_000
    #: emit a leading on-disk index block per SSTable; mediated point
    #: probes then read index + data (two commands per candidate)
    indexed_tables: bool = False
    #: route point lookups through an installed pushdown chase program
    #: (one vendor command per lookup); requires :meth:`MiniKV.
    #: install_pushdown` and falls back to mediated reads on error
    pushdown_reads: bool = False


@dataclass
class MiniKVStats:
    """Operation, cache, flush, and compaction counters."""
    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    hits: int = 0
    misses: int = 0
    block_reads: int = 0
    index_reads: int = 0
    pushdown_gets: int = 0
    pushdown_fallbacks: int = 0
    bloom_skips: int = 0
    flushes: int = 0
    compactions: int = 0
    compacted_bytes: int = 0
    write_stall_ns: int = 0


class MiniKV:
    """The database instance on one block device."""

    def __init__(
        self,
        sim: Simulator,
        device: BlockTarget,
        config: MiniKVConfig = MiniKVConfig(),
        name: str = "minikv",
    ):
        self.sim = sim
        self.device = device
        self.config = config
        self.name = name
        self.stats = MiniKVStats()
        self.allocator = ExtentAllocator(device, base_lba=config.wal_ring_blocks)
        from ..blockfs import Extent

        self.wal = WriteAheadLog(
            sim, device, Extent(0, config.wal_ring_blocks), carry_data=config.carry_data
        )
        self.memtable = MemTable(config.memtable_bytes)
        self.levels: list[list[SSTable]] = [[] for _ in range(config.max_levels)]
        self._sequence = 0
        self._next_table_id = 0
        self._flush_lock: Optional[Event] = None
        self._compacting = False
        #: MANIFEST role: sequence number fully covered by SSTables —
        #: WAL records at or below it are obsolete after a flush
        self.flushed_through_seq = 0
        #: set once install_pushdown() succeeds on the device
        self._push_armed = False

    # ------------------------------------------------------------ public API
    def _op_cpu(self):
        if self.config.op_cpu_ns:
            yield self.sim.timeout(self.config.op_cpu_ns)

    def put(self, key: bytes, value: bytes):
        """Process generator: durable insert/update.

        The tombstone sentinel is reserved for :meth:`delete`.
        """
        if value == TOMBSTONE:
            raise ValueError("value collides with the reserved tombstone sentinel")
        self.stats.puts += 1
        yield from self._op_cpu()
        yield from self._write(key, value)

    def delete(self, key: bytes):
        self.stats.deletes += 1
        yield from self._write(key, TOMBSTONE)

    def get(self, key: bytes):
        """Process generator: returns the value or None."""
        self.stats.gets += 1
        yield from self._op_cpu()
        hit = self.memtable.get(key)
        if hit is not None:
            value, _ = hit
            return self._found(value)
        if self._push_armed and self.config.pushdown_reads:
            done, value = yield from self._get_pushdown(key)
            if done:
                if value is None:
                    self.stats.misses += 1
                    return None
                return self._found(value)
        # L0: newest table first (overlapping ranges)
        for table in reversed(self.levels[0]):
            value = yield from self._probe_table(table, key)
            if value is not None:
                return self._found(value)
        # deeper levels: at most one candidate table per level
        for level in self.levels[1:]:
            table = self._level_candidate(level, key)
            if table is None:
                continue
            value = yield from self._probe_table(table, key)
            if value is not None:
                return self._found(value)
        self.stats.misses += 1
        return None

    def scan(self, start: bytes, end: bytes, limit: int = 100):
        """Process generator: merged range scan, newest version wins."""
        self.stats.scans += 1
        merged: dict[bytes, tuple[bytes, int]] = {}
        for key, value, seq in self.memtable.scan(start, end):
            merged[key] = (value, seq)
        for level_idx, level in enumerate(self.levels):
            for table in level:
                if not table.overlaps(start, end):
                    continue
                lo = table.block_for(start)
                hi = table.block_for(end)
                lo = 0 if lo is None else lo
                hi = table.num_blocks - 1 if hi is None else hi
                for block_idx in range(lo, hi + 1):
                    blob = yield from self._read_block(table, block_idx)
                    for key, value, seq in decode_records(blob):
                        if start <= key < end:
                            old = merged.get(key)
                            if old is None or seq > old[1]:
                                merged[key] = (value, seq)
        out = [
            (k, v) for k, (v, _) in sorted(merged.items()) if v != TOMBSTONE
        ]
        return out[:limit]

    # --------------------------------------------------------------- writes
    def _write(self, key: bytes, value: bytes):
        self._sequence += 1
        seq = self._sequence
        self.wal.append(key, value, seq)
        self.memtable.put(key, value, seq)
        if self.config.sync_writes:
            yield self.wal.sync()
        if self.memtable.should_flush:
            yield from self._flush_memtable()

    def _flush_memtable(self):
        """Write-stall flush: the triggering writer pays for it."""
        if self._flush_lock is not None:
            stall_start = self.sim.now
            yield self._flush_lock
            self.stats.write_stall_ns += self.sim.now - stall_start
            return
        self._flush_lock = self.sim.event(name=f"{self.name}.flush")
        full, self.memtable = self.memtable, MemTable(self.config.memtable_bytes)
        writer = self._writer(level=0, expected=len(full))
        for key, value, seq in full.sorted_items():
            writer.add(key, value, seq)
        table = yield from writer.finish()
        if table is not None:
            self.levels[0].append(table)
            self.stats.flushes += 1
            self.flushed_through_seq = max(
                self.flushed_through_seq,
                max(seq for _, _, seq in full.sorted_items()),
            )
        lock, self._flush_lock = self._flush_lock, None
        lock.succeed()
        if len(self.levels[0]) >= self.config.l0_compaction_trigger and not self._compacting:
            self._compacting = True
            self.sim.process(self._compact_l0(), name=f"{self.name}.compact")

    def _writer(self, level: int, expected: int) -> SSTableWriter:
        self._next_table_id += 1
        return SSTableWriter(
            self.sim, self.device, self.allocator, self._next_table_id,
            level, expected, carry_data=self.config.carry_data,
            indexed=self.config.indexed_tables,
        )

    # ----------------------------------------------------------- compaction
    def _compact_l0(self):
        """Merge all of L0 with the overlapping part of L1."""
        try:
            sources = list(self.levels[0])
            if not sources:
                return
            min_key = min(t.min_key for t in sources)
            max_key = max(t.max_key for t in sources)
            l1_overlap = [t for t in self.levels[1] if t.overlaps(min_key, max_key)]
            inputs = sources + l1_overlap
            merged: dict[bytes, tuple[bytes, int]] = {}
            for table in inputs:
                for block_idx in range(table.num_blocks):
                    blob = yield from self._read_block(table, block_idx)
                    for key, value, seq in decode_records(blob):
                        old = merged.get(key)
                        if old is None or seq > old[1]:
                            merged[key] = (value, seq)
                    self.stats.compacted_bytes += 4096
            # write new L1 tables at the target size
            new_tables: list[SSTable] = []
            writer = None
            written = 0
            for key in sorted(merged):
                value, seq = merged[key]
                if value == TOMBSTONE:
                    continue  # compaction drops deletions at the last level
                if writer is None:
                    writer = self._writer(level=1, expected=len(merged))
                writer.add(key, value, seq)
                written += len(key) + len(value) + 16
                if written >= self.config.target_table_bytes:
                    table = yield from writer.finish()
                    if table:
                        new_tables.append(table)
                    writer = None
                    written = 0
            if writer is not None:
                table = yield from writer.finish()
                if table:
                    new_tables.append(table)
            # swap: remove inputs, insert outputs (sorted by key)
            for table in sources:
                self.levels[0].remove(table)
                self.allocator.free(table.extent)
            for table in l1_overlap:
                self.levels[1].remove(table)
                self.allocator.free(table.extent)
            self.levels[1].extend(new_tables)
            self.levels[1].sort(key=lambda t: t.min_key)
            self.stats.compactions += 1
        finally:
            self._compacting = False
        if len(self.levels[0]) >= self.config.l0_compaction_trigger:
            self._compacting = True
            self.sim.process(self._compact_l0(), name=f"{self.name}.compact")

    # ------------------------------------------------------------- pushdown
    def install_pushdown(self):
        """Process generator: install the SSTable chase program.

        The program's windows cover everything past the WAL ring, so
        even a buggy program can never reach the durability log; the
        device must expose the vendor pushdown path
        (``install_push_program``/``push_exec``).
        """
        from ...push import chase_program

        install = getattr(self.device, "install_push_program", None)
        if install is None:
            raise SimulationError(f"{self.name}: device has no pushdown path")
        windows = [[self.config.wal_ring_blocks,
                    self.device.num_blocks - self.config.wal_ring_blocks]]
        info = yield install(chase_program(windows))
        self._push_armed = bool(getattr(info, "ok", False))
        return info

    def _candidate_tables(self, key: bytes) -> list[SSTable]:
        """Tables a mediated lookup would probe, in probe order."""
        tables = list(reversed(self.levels[0]))
        for level in self.levels[1:]:
            table = self._level_candidate(level, key)
            if table is not None:
                tables.append(table)
        out = []
        for table in tables:
            if not table.bloom.might_contain(key):
                self.stats.bloom_skips += 1
                continue
            if table.block_for(key) is None:
                continue
            out.append(table)
        return out

    def _get_pushdown(self, key: bytes):
        """Process generator: one vendor command resolves the lookup.

        Returns ``(done, value)``; ``done=False`` means the device
        refused the command (e.g. mid hot-remove) and the caller must
        fall back to mediated probes.
        """
        carry = self.config.carry_data
        tables = self._candidate_tables(key)
        if not tables:
            return True, None
        candidates = []
        for table in tables:
            cand = {
                "index_lba": table.extent.lba + table.index_block_for(key),
                "data_base": table.extent.lba + table.data_block_offset,
            }
            if not carry:
                # shadow mode: precompute the pointer chase outcome so
                # the engine issues the identical command sequence
                # without any bytes flowing
                ptr = table.block_for(key)
                cand["shadow_ptr"] = ptr
                cand["hit"] = table.get_from_block(
                    table.shadow_blocks[ptr], key) is not None
            candidates.append(cand)
        info = yield self.device.push_exec(
            {"carry": carry, "key": key, "candidates": candidates})
        result = info.data
        if not info.ok or result is None:
            self.stats.pushdown_fallbacks += 1
            return False, None
        self.stats.pushdown_gets += 1
        if not result.found:
            return True, None
        table = tables[result.candidate]
        blob = result.block if carry else table.shadow_blocks[result.block_idx]
        hit = table.get_from_block(blob or b"", key)
        return True, hit[0] if hit else None

    # ---------------------------------------------------------------- reads
    def _level_candidate(self, level: list[SSTable], key: bytes) -> Optional[SSTable]:
        if not level:
            return None
        idx = bisect.bisect_right([t.min_key for t in level], key) - 1
        if idx < 0:
            return None
        table = level[idx]
        return table if table.min_key <= key <= table.max_key else None

    def _probe_table(self, table: SSTable, key: bytes):
        if not table.bloom.might_contain(key):
            self.stats.bloom_skips += 1
            return None
        block_idx = table.block_for(key)
        if block_idx is None:
            return None
        if table.data_block_offset:
            # indexed table: the mediated path pays the on-disk index
            # hop a real database would (the pushdown path folds both
            # hops into one vendor command)
            block_idx = yield from self._read_index(table, key, block_idx)
        blob = yield from self._read_block(table, block_idx)
        hit = table.get_from_block(blob, key)
        return hit[0] if hit else None

    def _read_index(self, table: SSTable, key: bytes, block_idx: int):
        from .sstable import lookup_index_block

        self.stats.index_reads += 1
        info = yield self.device.read(
            table.extent.lba + table.index_block_for(key), 1,
            **self._read_kwargs()
        )
        if not info.ok:
            raise SimulationError("SSTable index read failed")
        if self.config.carry_data:
            looked = lookup_index_block(info.data or b"", key)
            if looked is not None:
                return looked
        return block_idx

    def _read_block(self, table: SSTable, block_idx: int):
        self.stats.block_reads += 1
        info = yield self.device.read(
            table.extent.lba + table.data_block_offset + block_idx, 1,
            **self._read_kwargs()
        )
        if not info.ok:
            raise SimulationError("SSTable block read failed")
        if self.config.carry_data:
            return info.data or b""
        assert table.shadow_blocks is not None
        return table.shadow_blocks[block_idx]

    def _read_kwargs(self) -> dict:
        return {"want_data": True} if self.config.carry_data else {}

    def _found(self, value: bytes) -> Optional[bytes]:
        if value == TOMBSTONE:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    # ------------------------------------------------------------- reporting
    @property
    def level_table_counts(self) -> list[int]:
        return [len(level) for level in self.levels]
