"""SSTables: immutable sorted runs on disk.

A table is one extent of 4 KiB data blocks plus in-memory metadata
(block index of first-keys, bloom filter, key range) — the structure
RocksDB keeps per .sst file.  Point reads cost one block read when the
bloom filter passes; range scans read the covered blocks.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass, field
from typing import Optional

from ...host.block import BlockTarget
from ...sim import SimulationError, Simulator
from ...sim.units import PAGE_SIZE
from ..blockfs import Extent, ExtentAllocator
from .bloom import BloomFilter
from .encoding import decode_records, encode_record

__all__ = ["SSTable", "SSTableWriter", "lookup_index_block"]


def lookup_index_block(blob: bytes, key: bytes) -> Optional[int]:
    """Data-block number from one on-disk index block.

    Index records reuse the data framing with an 8-byte little-endian
    block number as the value; the answer is the last entry whose first
    key is <= ``key`` (the same rule :meth:`SSTable.block_for` applies
    to the in-memory index).
    """
    best: Optional[int] = None
    for first_key, value, _seq in decode_records(blob):
        if first_key > key:
            break
        best = int.from_bytes(value[:8], "little")
    return best


@dataclass
class SSTable:
    """Metadata of one on-disk sorted run."""

    table_id: int
    extent: Extent
    first_keys: list[bytes]  # first key of each data block
    bloom: BloomFilter
    min_key: bytes
    max_key: bytes
    num_records: int
    level: int = 0
    #: authoritative block payloads when the store elides device bytes
    shadow_blocks: Optional[list[bytes]] = field(default=None, repr=False)
    #: leading on-disk index blocks preceding the data blocks; data
    #: block i lives at ``extent.lba + data_block_offset + i``
    data_block_offset: int = 0
    #: first key covered by each on-disk index block (indexed tables)
    index_first_keys: Optional[list[bytes]] = None

    @property
    def num_blocks(self) -> int:
        return len(self.first_keys)

    def overlaps(self, min_key: bytes, max_key: bytes) -> bool:
        return not (self.max_key < min_key or max_key < self.min_key)

    def block_for(self, key: bytes) -> Optional[int]:
        """Index of the data block that could hold ``key``."""
        if not (self.min_key <= key <= self.max_key):
            return None
        idx = bisect.bisect_right(self.first_keys, key) - 1
        return max(0, idx)

    def index_block_for(self, key: bytes) -> int:
        """Which on-disk index block covers ``key`` (indexed tables)."""
        assert self.index_first_keys is not None
        idx = bisect.bisect_right(self.index_first_keys, key) - 1
        return max(0, idx)

    def get_from_block(self, blob: bytes, key: bytes) -> Optional[tuple[bytes, int]]:
        best: Optional[tuple[bytes, int]] = None
        for k, v, seq in decode_records(blob):
            if k == key and (best is None or seq > best[1]):
                best = (v, seq)
        return best


class SSTableWriter:
    """Builds a table block by block, then writes it sequentially."""

    def __init__(
        self,
        sim: Simulator,
        device: BlockTarget,
        allocator: ExtentAllocator,
        table_id: int,
        level: int,
        expected_records: int,
        carry_data: bool = False,
        indexed: bool = False,
    ):
        self.sim = sim
        self.device = device
        self.allocator = allocator
        self.table_id = table_id
        self.level = level
        self.carry_data = carry_data
        self.indexed = indexed
        self._blocks: list[bytes] = []
        self._current = bytearray()
        self._first_keys: list[bytes] = []
        self._bloom = BloomFilter(max(16, expected_records))
        self._min_key: Optional[bytes] = None
        self._max_key: Optional[bytes] = None
        self._records = 0

    def add(self, key: bytes, value: bytes, sequence: int) -> None:
        """Append in sorted order (caller guarantees ordering)."""
        if self._max_key is not None and key < self._max_key:
            raise SimulationError("SSTable records must be added in key order")
        rec = encode_record(key, value, sequence)
        if len(self._current) + len(rec) > PAGE_SIZE and self._current:
            self._seal_block()
        if not self._current:
            self._first_keys.append(key)
        self._current += rec
        self._bloom.add(key)
        if self._min_key is None:
            self._min_key = key
        self._max_key = key
        self._records += 1

    def _seal_block(self) -> None:
        self._blocks.append(bytes(self._current.ljust(PAGE_SIZE, b"\0")))
        self._current = bytearray()

    def _index_blocks(self) -> tuple[list[bytes], list[bytes]]:
        """On-disk index: one record per data block (first key -> number)."""
        blocks: list[bytes] = []
        block_keys: list[bytes] = []
        current = bytearray()
        for number, first_key in enumerate(self._first_keys):
            rec = encode_record(first_key, struct.pack("<Q", number), 0)
            if len(current) + len(rec) > PAGE_SIZE and current:
                blocks.append(bytes(current.ljust(PAGE_SIZE, b"\0")))
                current = bytearray()
            if not current:
                block_keys.append(first_key)
            current += rec
        if current:
            blocks.append(bytes(current.ljust(PAGE_SIZE, b"\0")))
        return blocks, block_keys

    def finish(self):
        """Process generator: write all blocks; returns the SSTable."""
        if self._current:
            self._seal_block()
        if not self._blocks:
            return None
        index_blocks: list[bytes] = []
        index_keys: list[bytes] = []
        if self.indexed:
            index_blocks, index_keys = self._index_blocks()
        blocks = index_blocks + self._blocks
        extent = self.allocator.alloc(len(blocks))
        # one large sequential write, as a file-system append would issue
        payload = b"".join(blocks) if self.carry_data else None
        info = yield self.device.write(extent.lba, len(blocks), payload=payload)
        if not info.ok:
            raise SimulationError("SSTable write failed")
        return SSTable(
            table_id=self.table_id,
            extent=extent,
            first_keys=self._first_keys,
            bloom=self._bloom,
            min_key=self._min_key or b"",
            max_key=self._max_key or b"",
            num_records=self._records,
            level=self.level,
            shadow_blocks=None if self.carry_data else list(self._blocks),
            data_block_offset=len(index_blocks),
            index_first_keys=index_keys if self.indexed else None,
        )
