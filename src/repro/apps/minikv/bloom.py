"""Bloom filter for SSTable key membership.

One filter per table keeps point lookups from touching disk for tables
that cannot contain the key — the standard LSM read-amplification
control; its false-positive rate directly shapes YCSB read latency.
"""

from __future__ import annotations

import hashlib

__all__ = ["BloomFilter"]


class BloomFilter:
    """Classic k-hash bloom filter over a bit array."""

    def __init__(self, expected_items: int, bits_per_key: int = 10):
        self.num_bits = max(64, expected_items * bits_per_key)
        self.num_hashes = max(1, int(bits_per_key * 0.69))  # ln2 * bits/key
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.items = 0

    def _positions(self, key: bytes):
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.items += 1

    def might_contain(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    @property
    def size_bytes(self) -> int:
        return len(self._bits)
