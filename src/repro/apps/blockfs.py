"""Minimal extent allocator over a raw block device.

Both mini database engines lay their files out through this: a region
of the device is carved into named extents (WAL ring, SSTables, table
pages), allocated bump-style with a free list for recycling — the
filesystem-shaped substrate the paper's applications sit on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..host.block import BlockTarget
from ..sim import SimulationError

__all__ = ["Extent", "ExtentAllocator"]


@dataclass(frozen=True)
class Extent:
    """A contiguous run of blocks on the device."""

    lba: int
    nblocks: int

    @property
    def end(self) -> int:
        return self.lba + self.nblocks


class ExtentAllocator:
    """Bump allocator with size-bucketed free lists."""

    def __init__(self, device: BlockTarget, base_lba: int = 0,
                 limit_blocks: int | None = None):
        self.device = device
        self.base_lba = base_lba
        self.limit = (
            base_lba + limit_blocks if limit_blocks is not None else device.num_blocks
        )
        self._next = base_lba
        self._free: dict[int, list[int]] = {}
        self.allocated_blocks = 0

    def alloc(self, nblocks: int) -> Extent:
        if nblocks <= 0:
            raise SimulationError("extent size must be positive")
        bucket = self._free.get(nblocks)
        if bucket:
            lba = bucket.pop()
        else:
            lba = self._next
            if lba + nblocks > self.limit:
                raise SimulationError(
                    f"device full: cannot allocate {nblocks} blocks"
                )
            self._next += nblocks
        self.allocated_blocks += nblocks
        return Extent(lba, nblocks)

    def free(self, extent: Extent) -> None:
        self._free.setdefault(extent.nblocks, []).append(extent.lba)
        self.allocated_blocks -= extent.nblocks

    @property
    def used_blocks(self) -> int:
        return self._next - self.base_lba
