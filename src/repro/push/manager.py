"""Engine-side pushdown manager: install table + interpreter.

One :class:`PushManager` per :class:`~repro.core.engine.BMSEngine`,
armed lazily (``engine.push_manager()``) exactly like the CoW volume
layer — worlds that never install a program keep ``engine.push is
None`` and execute byte-identical event sequences.

The interpreter runs inside the engine's command path: a ``PUSH_EXEC``
vendor I/O command names an invocation object parked at its PRP page;
the interpreter fetches it, runs the namespace's installed program,
issues the backend reads itself (each one QoS-admitted, window-checked,
translated through the mapping table, and forwarded through the normal
adaptor slots), and parks a result object back at the same page.

Sandboxing is enforced twice: the runtime re-checks every invocation
LBA against the installed program's windows (``PUSH_SANDBOX_FAULT`` on
escape), and the ``push`` invariant checker — a pure observer —
independently shadows every program-issued backend I/O against the
declared confinement *and* the namespace bounds, so deleting either
enforcement point is caught by the other.

Data semantics follow the repo's two-mode byte model: ``carry``
invocations parse real block bytes DMA'd into engine chip memory
(early-exiting a chase at the first block containing the key); shadow
invocations carry host-precomputed pointers/hit flags so the backend
command sequence is identical while no bytes flow.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Optional

from ..nvme.command import alloc_sqe
from ..nvme.spec import LBA_BYTES, IOOpcode, StatusCode
from ..sim import SimulationError
from ..sim.units import PAGE_SIZE
from .program import PushCosts, PushProgram, validate_program

__all__ = ["PushManager", "PushResult", "InstalledProgram"]

#: modeled size of the result record DMA'd back into the invocation page
RESULT_BYTES = 512

#: on-disk record framing shared with the apps: key_len, value_len, seq
_RECORD_HEADER = struct.Struct("<IIQ")


def _decode_records(raw: bytes):
    """(key, value, seq) triples from one block; stops at padding."""
    out = []
    offset = 0
    while offset + _RECORD_HEADER.size <= len(raw):
        key_len, value_len, seq = _RECORD_HEADER.unpack_from(raw, offset)
        if key_len == 0:
            break
        offset += _RECORD_HEADER.size
        if offset + key_len + value_len > len(raw):
            break
        key = raw[offset : offset + key_len]
        value = raw[offset + key_len : offset + key_len + value_len]
        out.append((key, value, seq))
        offset += key_len + value_len
    return out


@dataclass
class PushResult:
    """What an invocation hands back to the host (parked object)."""

    found: bool = False
    candidate: Optional[int] = None
    block_idx: Optional[int] = None
    hops: int = 0
    #: raw data-block bytes of the hit (carry mode only)
    block: Optional[bytes] = None
    #: filter outputs
    count: int = 0
    records: Optional[list] = None
    #: cond_write outcome
    committed: bool = False
    stored_seq: Optional[int] = None


@dataclass
class InstalledProgram:
    """One namespace's installed program + its execution statistics."""

    key: str
    program: PushProgram
    execs: int = 0
    backend_reads: int = 0
    backend_writes: int = 0
    hops_saved: int = 0
    sandbox_faults: int = 0
    exec_ns: int = 0

    def stat(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "kind": self.program.kind,
            "max_hops": self.program.max_hops,
            "max_fanout": self.program.max_fanout,
            "windows": [list(w) for w in self.program.windows],
            "execs": self.execs,
            "backend_reads": self.backend_reads,
            "backend_writes": self.backend_writes,
            "hops_saved": self.hops_saved,
            "sandbox_faults": self.sandbox_faults,
            "exec_ns": self.exec_ns,
        }


class _SandboxEscape(Exception):
    """Internal: an invocation LBA left the program's windows."""

    def __init__(self, lba: int, nblocks: int):
        super().__init__(f"push sandbox escape at lba {lba} (+{nblocks})")
        self.lba = lba
        self.nblocks = nblocks


class PushManager:
    """Install/uninstall/stat + the in-engine interpreter."""

    def __init__(self, engine, costs: PushCosts = PushCosts()):
        self.engine = engine
        self.obs = engine.obs
        self.costs = costs
        self.programs: dict[str, InstalledProgram] = {}
        self.programs_installed = 0
        #: bound CheckContext (push checker); None = dormant, zero-cost
        self.checks = None
        ctx = engine._check_ctx
        if ctx is not None:
            ctx.bind_push(self)

    # ------------------------------------------------------------- install
    def install(self, key: str, program: dict, validate: bool = True) -> dict:
        """Validate + install ``program`` on namespace ``key``.

        ``validate=False`` is a test hook that skips the static
        validator so the runtime sandbox and the push checker can be
        exercised against intentionally out-of-range programs.
        """
        ens = self.engine.namespaces.get(key)
        if ens is None:
            raise SimulationError(f"no namespace {key} to install a program on")
        if validate:
            validated = validate_program(program, ens.namespace.num_blocks)
        else:
            validated = PushProgram(
                kind=program["kind"], max_hops=program["max_hops"],
                max_fanout=program["max_fanout"],
                windows=tuple(tuple(w) for w in program["windows"]),
            )
        entry = InstalledProgram(key=key, program=validated)
        self.programs[key] = entry
        self.programs_installed += 1
        if self.obs is not None:
            self.obs.counter("push_programs_installed").inc()
        if self.checks is not None:
            self.checks.on_push_install(self, key, validated,
                                        ens.namespace.num_blocks)
        return entry.stat()

    def uninstall(self, key: str) -> dict:
        entry = self.programs.pop(key, None)
        if entry is None:
            raise SimulationError(f"no push program installed on {key}")
        return entry.stat()

    def program_for(self, key: str) -> Optional[InstalledProgram]:
        return self.programs.get(key)

    def stat(self, key: str) -> dict:
        entry = self.programs.get(key)
        if entry is None:
            raise SimulationError(f"no push program installed on {key}")
        return entry.stat()

    def stat_all(self) -> list[dict]:
        return [self.programs[key].stat() for key in sorted(self.programs)]

    # --------------------------------------------------------- interpreter
    def execute(self, fn, qid: int, sqe, ens):
        """Generator: run one PUSH_EXEC command end to end."""
        engine = self.engine
        sim = engine.sim
        span = sqe.span
        t_start = sim.now

        # the vendor command flows through the same pipeline stages as
        # any other I/O before the interpreter takes over
        yield engine._pipeline.acquire()
        yield sim.timeout(engine.timings.issue_ns)
        engine._pipeline.release()
        yield sim.timeout(engine.timings.pipeline_ns)

        entry = self.programs.get(ens.key)
        if entry is None:
            engine.post_front_cqe(fn, qid, sqe.cid,
                                  int(StatusCode.INVALID_FIELD), 0, span=span)
            return
        invocation = yield engine.front_port.mem_read(sqe.prp1, PAGE_SIZE)
        if not isinstance(invocation, dict):
            engine.post_front_cqe(fn, qid, sqe.cid,
                                  int(StatusCode.INVALID_FIELD), 0, span=span)
            return
        yield sim.timeout(self.costs.dispatch_ns)

        kind = entry.program.kind
        result = PushResult()
        try:
            if kind == "chase":
                status = yield from self._run_chase(fn, ens, entry,
                                                    invocation, result, span)
            elif kind == "filter":
                status = yield from self._run_filter(fn, ens, entry,
                                                     invocation, result, span)
            else:
                status = yield from self._run_cond_write(fn, ens, entry,
                                                         invocation, result,
                                                         span)
        except _SandboxEscape:
            entry.sandbox_faults += 1
            if self.obs is not None:
                self.obs.counter("push_sandbox_faults", ns=ens.key).inc()
            status = int(StatusCode.PUSH_SANDBOX_FAULT)

        if span is not None:
            span.stamp("backend_done", sim.now)
        # DMA the result record back into the invocation page
        yield engine.front_port.mem_write(sqe.prp1, RESULT_BYTES, None)
        engine.host.memory.store_obj(sqe.prp1, result)
        if span is not None:
            span.stamp("push_exec", sim.now)

        entry.execs += 1
        elapsed = sim.now - t_start
        entry.exec_ns += elapsed
        saved = max(0, result.hops - 1)
        entry.hops_saved += saved
        if self.obs is not None:
            if saved:
                self.obs.counter("push_hops_saved").inc(saved)
            self.obs.counter("push_exec_ns").inc(elapsed)
        engine.post_front_cqe(fn, qid, sqe.cid, status, 0, span=span)

    # ------------------------------------------------------- backend hops
    def _backend_io(self, fn, ens, entry, opcode: int, lba: int,
                    nblocks: int, payload, span):
        """One program-issued backend command; returns (status, data).

        The checker observes the access *before* the runtime window
        gate so an out-of-range program is caught even if the inline
        enforcement is ever reverted (and vice versa).
        """
        engine = self.engine
        program = entry.program
        if self.checks is not None:
            self.checks.on_push_io(self, ens.key, lba, nblocks, span=span)
        if not program.admits(lba, nblocks):
            raise _SandboxEscape(lba, nblocks)
        # pushdown hops are still tenant I/O: each one is QoS-admitted
        yield engine.qos.admit(fn.ns_key, nblocks * LBA_BYTES, span=span)
        yield engine.sim.timeout(self.costs.hop_ns)
        try:
            extents = ens.table.translate_extent(lba, nblocks)
        except SimulationError as exc:
            from ..checks.runtime import InvariantViolation

            if isinstance(exc, InvariantViolation):
                raise
            return int(StatusCode.LBA_OUT_OF_RANGE), None

        length = nblocks * LBA_BYTES
        buf = engine._prp_pool.get(length)
        pages = [buf + i * PAGE_SIZE for i in range(nblocks)]
        done = engine.sim.event(name="push.hop")
        state = {"remaining": len(extents), "status": int(StatusCode.SUCCESS)}

        def on_complete(status: int) -> None:
            if status != int(StatusCode.SUCCESS):
                state["status"] = status
            state["remaining"] -= 1
            if state["remaining"] == 0:
                done.succeed(state["status"])

        lists = []
        block_off = 0
        for ssd_id, plba, cnt in extents:
            frag_pages = pages[block_off : block_off + cnt]
            prp1, prp2, list_addr = self._chip_prps(frag_pages)
            if list_addr is not None:
                lists.append((list_addr, (len(frag_pages) - 1) * 8))
            frag_payload = None
            if payload is not None:
                frag_payload = payload[block_off * LBA_BYTES :][: cnt * LBA_BYTES]
            fwd = alloc_sqe(
                opcode=opcode, cid=0, nsid=1, slba=plba, nlb=cnt - 1,
                prp1=prp1, prp2=prp2, payload=frag_payload,
                submit_time_ns=engine.sim.now,
            )
            if span is not None:
                fwd.span = span  # the back-end SSD stamps ssd_dma per hop
            engine.adaptor.slot_for(ssd_id).forward(fwd, on_complete)
            block_off += cnt
        status = yield done
        for addr, size in lists:
            # drop the PRPList object before the buffer recycles (a
            # later data read at this address must see bytes)
            self._list_memory(addr).pop_obj(addr)
            engine._prp_pool.put(addr, size)
        data = None
        if status == int(StatusCode.SUCCESS) and opcode == int(IOOpcode.READ):
            data = engine.chip_memory.mem_read(buf, length)
        engine._prp_pool.put(buf, length)
        if opcode == int(IOOpcode.READ):
            entry.backend_reads += 1
        else:
            entry.backend_writes += 1
        return status, data

    def _chip_prps(self, pages: list[int]):
        """PRP fields for a chip-memory buffer (untagged back-end space)."""
        if len(pages) == 1:
            return pages[0], 0, None
        if len(pages) == 2:
            return pages[0], pages[1], None
        from ..nvme.prp import PRPList

        size = (len(pages) - 1) * 8
        list_addr = self.engine._prp_pool.get(size)
        self._list_memory(list_addr).store_obj(list_addr,
                                               PRPList(list_addr, pages[1:]))
        return pages[0], list_addr, list_addr

    def _list_memory(self, addr: int):
        """The memory a pooled PRP-list buffer lives in (spilled lists
        live off-card when the CXL tier is armed)."""
        if self.engine.cxl is not None:
            return self.engine.cxl.owner_memory(addr)
        return self.engine.chip_memory

    # ---------------------------------------------------------------- ops
    def _run_chase(self, fn, ens, entry, inv, result: PushResult, span):
        """read -> compare -> resubmit pointer chase over candidates."""
        program = entry.program
        carry = bool(inv.get("carry"))
        key = inv.get("key")
        candidates = inv.get("candidates") or []
        sim = self.engine.sim
        for idx, cand in enumerate(candidates):
            if result.hops + 2 > program.max_hops:
                break  # bounded: never start a candidate we cannot finish
            status, raw = yield from self._backend_io(
                fn, ens, entry, int(IOOpcode.READ),
                int(cand["index_lba"]), 1, None, span)
            result.hops += 1
            if status != int(StatusCode.SUCCESS):
                return status
            if carry:
                yield sim.timeout(self.costs.scan_ns)
                block_idx = self._index_lookup(raw or b"", key)
            else:
                block_idx = cand.get("shadow_ptr")
            if block_idx is None:
                continue  # key precedes this table's range: no data hop
            status, raw = yield from self._backend_io(
                fn, ens, entry, int(IOOpcode.READ),
                int(cand["data_base"]) + block_idx, 1, None, span)
            result.hops += 1
            if status != int(StatusCode.SUCCESS):
                return status
            if carry:
                yield sim.timeout(self.costs.scan_ns)
                hit = any(rk == key for rk, _v, _s in
                          _decode_records(raw or b""))
                if hit:
                    result.block = raw
            else:
                hit = bool(cand.get("hit"))
            if hit:
                result.found = True
                result.candidate = idx
                result.block_idx = block_idx
                break
        return int(StatusCode.SUCCESS)

    @staticmethod
    def _index_lookup(raw: bytes, key) -> Optional[int]:
        """Last index record with first_key <= key -> data block number."""
        best = None
        for rec_key, value, _seq in _decode_records(raw):
            if key is not None and rec_key > key:
                break
            best = int.from_bytes(value[:8], "little")
        return best

    def _run_filter(self, fn, ens, entry, inv, result: PushResult, span):
        """Filter/aggregate-on-read over one bounded contiguous range."""
        program = entry.program
        carry = bool(inv.get("carry"))
        base_lba = int(inv.get("base_lba", 0))
        nblocks = int(inv.get("nblocks", 1))
        if not 1 <= nblocks <= program.max_fanout:
            return int(StatusCode.INVALID_FIELD)
        status, raw = yield from self._backend_io(
            fn, ens, entry, int(IOOpcode.READ), base_lba, nblocks, None, span)
        result.hops += 1
        if status != int(StatusCode.SUCCESS):
            return status
        if carry:
            yield self.engine.sim.timeout(self.costs.scan_ns * nblocks)
            lo, hi = inv.get("lo"), inv.get("hi")
            matches = [
                (rk, value, seq)
                for rk, value, seq in _decode_records(raw or b"")
                if (lo is None or rk >= lo) and (hi is None or rk <= hi)
            ]
            result.count = len(matches)
            if inv.get("mode", "collect") == "collect":
                result.records = matches
        return int(StatusCode.SUCCESS)

    def _run_cond_write(self, fn, ens, entry, inv, result: PushResult, span):
        """Key-versioned conditional write: read, compare seq, commit."""
        carry = bool(inv.get("carry"))
        lba = int(inv.get("lba", 0))
        expected = inv.get("expected_seq")
        status, raw = yield from self._backend_io(
            fn, ens, entry, int(IOOpcode.READ), lba, 1, None, span)
        result.hops += 1
        if status != int(StatusCode.SUCCESS):
            return status
        if carry:
            records = _decode_records(raw or b"")
            stored = records[0][2] if records else None
        else:
            stored = inv.get("current_seq")
        result.stored_seq = stored
        if stored != expected:
            return int(StatusCode.SUCCESS)  # lost the race: not committed
        yield self.engine.sim.timeout(self.costs.write_ns)
        payload = inv.get("payload") if carry else None
        status, _ = yield from self._backend_io(
            fn, ens, entry, int(IOOpcode.WRITE), lba, 1, payload, span)
        result.hops += 1
        if status != int(StatusCode.SUCCESS):
            return status
        result.committed = True
        return int(StatusCode.SUCCESS)
