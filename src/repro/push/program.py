"""Pushdown program model, static validator, and cost model.

A *program* is pure JSON-able data — it crosses the NVMe-MI mgmt plane
(JSON-serialized MCTP payloads) and the in-band vendor admin path
unchanged.  Three operation kinds cover the lookups the apps need:

``chase``
    read -> compare -> resubmit pointer chase: follow an on-disk index
    block to a data block, bounded by ``max_hops`` backend reads.
``filter``
    filter/aggregate-on-read over a bounded contiguous range
    (``max_fanout`` blocks): return matching records or their count.
``cond_write``
    key-versioned conditional write: read a block, compare the stored
    record's sequence number, write only on match.

The **validator** is the sandbox: it rejects any program whose
reachable LBAs can escape the declared windows (which must sit inside
the namespace), and any program whose step/fanout bounds are missing,
non-positive, or above the hard caps.  At run time the interpreter
re-checks every invocation LBA against the installed windows, so a
validated program can never read outside what it declared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim import SimulationError

__all__ = [
    "MAX_HOPS",
    "MAX_FANOUT",
    "PushValidationError",
    "PushProgram",
    "PushCosts",
    "validate_program",
    "chase_program",
    "filter_program",
    "cond_write_program",
]

#: hard cap on backend reads one invocation may issue (pointer-chase depth)
MAX_HOPS = 64
#: hard cap on blocks one filter/aggregate read may touch
MAX_FANOUT = 32

PROGRAM_KINDS = ("chase", "filter", "cond_write")


class PushValidationError(SimulationError):
    """The static validator rejected a program."""


@dataclass(frozen=True)
class PushCosts:
    """Deterministic per-op interpreter latencies (engine ARM/FPGA ns)."""

    dispatch_ns: int = 500  # invocation fetch + program lookup + setup
    hop_ns: int = 250  # per backend read issued (pointer-deref stage)
    scan_ns: int = 400  # per data block parsed/filtered in carry mode
    write_ns: int = 300  # conditional-write commit stage


@dataclass(frozen=True)
class PushProgram:
    """One validated program: kind, bounds, and LBA confinement."""

    kind: str
    max_hops: int
    max_fanout: int
    #: declared reachable-LBA windows: ((start_lba, nblocks), ...)
    windows: tuple[tuple[int, int], ...]

    def admits(self, lba: int, nblocks: int) -> bool:
        """True iff ``[lba, lba+nblocks)`` sits inside one window."""
        for start, count in self.windows:
            if lba >= start and lba + nblocks <= start + count:
                return True
        return False

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "max_hops": self.max_hops,
            "max_fanout": self.max_fanout,
            "windows": [list(w) for w in self.windows],
        }


def _require_int(raw: Any, what: str) -> int:
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise PushValidationError(f"push program {what} must be an integer, "
                                  f"got {raw!r}")
    return raw


def validate_program(program: dict, num_blocks: int) -> PushProgram:
    """Statically validate ``program`` against a namespace of
    ``num_blocks`` LBAs; returns the frozen :class:`PushProgram`.

    Rejection is the sandbox guarantee: a program passes only if every
    LBA it can ever reach lies inside its declared windows and those
    windows lie inside the namespace, and only if its hop/fanout bounds
    are explicit, positive, and under the hard caps.
    """
    if not isinstance(program, dict):
        raise PushValidationError(f"push program must be a dict, "
                                  f"got {type(program).__name__}")
    kind = program.get("kind")
    if kind not in PROGRAM_KINDS:
        raise PushValidationError(
            f"push program kind {kind!r} not one of {PROGRAM_KINDS}")
    max_hops = _require_int(program.get("max_hops"), "max_hops")
    if not 1 <= max_hops <= MAX_HOPS:
        raise PushValidationError(
            f"max_hops {max_hops} outside [1, {MAX_HOPS}]: unbounded or "
            "degenerate pointer chases are rejected")
    max_fanout = _require_int(program.get("max_fanout"), "max_fanout")
    if not 1 <= max_fanout <= MAX_FANOUT:
        raise PushValidationError(
            f"max_fanout {max_fanout} outside [1, {MAX_FANOUT}]")
    raw_windows = program.get("windows")
    if not isinstance(raw_windows, (list, tuple)) or not raw_windows:
        raise PushValidationError("push program needs at least one LBA window")
    windows: list[tuple[int, int]] = []
    for raw in raw_windows:
        if not isinstance(raw, (list, tuple)) or len(raw) != 2:
            raise PushValidationError(
                f"window {raw!r} is not a (start_lba, nblocks) pair")
        start = _require_int(raw[0], "window start_lba")
        count = _require_int(raw[1], "window nblocks")
        if start < 0 or count < 1:
            raise PushValidationError(
                f"window ({start}, {count}) is empty or negative")
        if start + count > num_blocks:
            raise PushValidationError(
                f"window ({start}, {count}) escapes the namespace "
                f"({num_blocks} blocks): reachable LBAs must stay inside "
                "the namespace's extents")
        windows.append((start, count))
    return PushProgram(kind=kind, max_hops=max_hops, max_fanout=max_fanout,
                       windows=tuple(windows))


# ----------------------------------------------------------- constructors
def chase_program(windows, max_hops: int = MAX_HOPS,
                  max_fanout: int = 1) -> dict:
    """Pointer-chase program literal (index block -> data block)."""
    return {"kind": "chase", "max_hops": max_hops, "max_fanout": max_fanout,
            "windows": [list(w) for w in windows]}


def filter_program(windows, max_fanout: int = MAX_FANOUT) -> dict:
    """Filter/aggregate-on-read program literal."""
    return {"kind": "filter", "max_hops": 1, "max_fanout": max_fanout,
            "windows": [list(w) for w in windows]}


def cond_write_program(windows) -> dict:
    """Key-versioned conditional-write program literal."""
    return {"kind": "cond_write", "max_hops": 2, "max_fanout": 1,
            "windows": [list(w) for w in windows]}
