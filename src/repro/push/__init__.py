"""Computational pushdown: validated in-engine I/O programs.

The host installs small, statically validated *programs* on a
namespace; a single vendor I/O command (``PUSH_EXEC``) then runs a
program invocation *at* the BMS-Engine, which issues the backend reads
itself — a multi-hop pointer chase costs one host↔engine submission
instead of one round-trip per hop (the "BPF for storage" bet,
arXiv 2102.12922).
"""

from .program import (
    MAX_FANOUT,
    MAX_HOPS,
    PushCosts,
    PushProgram,
    PushValidationError,
    chase_program,
    cond_write_program,
    filter_program,
    validate_program,
)
from .manager import PushManager, PushResult

__all__ = [
    "MAX_FANOUT",
    "MAX_HOPS",
    "PushCosts",
    "PushManager",
    "PushProgram",
    "PushResult",
    "PushValidationError",
    "chase_program",
    "cond_write_program",
    "filter_program",
    "validate_program",
]
