"""Tenant -> server placement policies for the fleet control plane.

A policy is a pure function of ``(fleet, tenants)``: no randomness, ties
broken by name, so the same inputs always yield the identical
:class:`Placement`.  Every policy enforces both hard capacities of a
server — namespace chunks (the engine would refuse to carve more) and
nominal IOPS (the demand bookkeeping the paper's TCO sizing uses) — and
raises :class:`PlacementError` instead of overcommitting.

Policies
--------
``spread``    balance across failure domains first, then servers —
              maximizes blast-radius isolation and keeps rolling
              upgrade waves cheap (each wave touches few tenants twice)
``binpack``   first-fit decreasing onto the fewest servers — the
              consolidation/TCO answer
``qos``       gold tenants spread across domains with IOPS headroom
              reserved; best-effort classes packed on the remainder
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tenants import TenantSpec
from .topology import FleetSpec, RackSpec, ServerSpec

__all__ = ["PlacementError", "Placement", "POLICIES", "place", "evacuate"]

#: a server hosting a gold tenant keeps this fraction of nominal IOPS
#: as guaranteed headroom under the ``qos`` policy
GOLD_HEADROOM = 0.7


class PlacementError(ValueError):
    """No feasible assignment under the policy's constraints."""


@dataclass
class Placement:
    """An assignment of every tenant to one server, with load accounting."""

    fleet: FleetSpec
    policy: str
    assignments: dict[str, str] = field(default_factory=dict)   # tenant -> server
    tenants: dict[str, TenantSpec] = field(default_factory=dict)

    def assign(self, tenant: TenantSpec, server: ServerSpec) -> None:
        self.assignments[tenant.name] = server.name
        self.tenants[tenant.name] = tenant

    def server_of(self, tenant_name: str) -> str:
        return self.assignments[tenant_name]

    def tenants_on(self, server_name: str) -> tuple[TenantSpec, ...]:
        return tuple(
            self.tenants[t] for t, s in self.assignments.items() if s == server_name
        )

    def chunks_used(self, server_name: str) -> int:
        return sum(t.chunks for t in self.tenants_on(server_name))

    def iops_used(self, server_name: str) -> int:
        return sum(t.demand_iops for t in self.tenants_on(server_name))

    def domain_tenant_counts(self) -> dict[str, int]:
        counts = {rack.name: 0 for rack in self.fleet.racks}
        for server in self.assignments.values():
            counts[self.fleet.domain_of(server)] += 1
        return counts

    def describe(self) -> dict:
        """Stable JSON-able view: per-server load plus the assignment map."""
        servers = []
        for s in self.fleet.servers():
            servers.append({
                "server": s.name,
                "rack": s.rack,
                "tenants": sorted(t.name for t in self.tenants_on(s.name)),
                "chunks_used": self.chunks_used(s.name),
                "chunk_capacity": s.chunk_capacity,
                "iops_used": self.iops_used(s.name),
                "iops_capacity": s.iops_capacity,
            })
        return {
            "policy": self.policy,
            "assignments": dict(sorted(self.assignments.items())),
            "servers": servers,
        }


def _check(fleet: FleetSpec, tenants: tuple[TenantSpec, ...]) -> None:
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise PlacementError("duplicate tenant names")
    for t in tenants:
        if all(t.chunks > s.chunk_capacity or t.demand_iops > s.iops_capacity
               for s in fleet.servers()):
            raise PlacementError(
                f"tenant {t.name} ({t.chunks} chunks, {t.demand_iops} IOPS) "
                "does not fit on any server")


def _fits(server: ServerSpec, tenant: TenantSpec, placement: Placement,
          iops_cap_fraction: float = 1.0) -> bool:
    return (placement.chunks_used(server.name) + tenant.chunks
            <= server.chunk_capacity
            and placement.iops_used(server.name) + tenant.demand_iops
            <= server.iops_capacity * iops_cap_fraction)


def _spread_into(placement: Placement, tenants: list[TenantSpec],
                 iops_cap_fraction: float = 1.0) -> None:
    """Least-loaded failure domain, then least-loaded server, then name."""
    fleet = placement.fleet
    for tenant in tenants:
        domain_counts = placement.domain_tenant_counts()
        candidates = [
            s for s in fleet.servers()
            if _fits(s, tenant, placement, iops_cap_fraction)
        ]
        if not candidates:
            raise PlacementError(
                f"no server can host tenant {tenant.name} "
                f"({tenant.chunks} chunks, {tenant.demand_iops} IOPS)")
        candidates.sort(key=lambda s: (
            domain_counts[s.rack],
            placement.iops_used(s.name),
            placement.chunks_used(s.name),
            s.name,
        ))
        placement.assign(tenant, candidates[0])


def place_spread(fleet: FleetSpec, tenants: tuple[TenantSpec, ...]) -> Placement:
    """Balance tenants across failure domains, largest demand first."""
    _check(fleet, tenants)
    placement = Placement(fleet, "spread")
    ordered = sorted(tenants, key=lambda t: (-t.demand_iops, t.name))
    _spread_into(placement, ordered)
    return placement


def place_binpack(fleet: FleetSpec, tenants: tuple[TenantSpec, ...]) -> Placement:
    """First-fit decreasing by chunks: consolidate onto few servers."""
    _check(fleet, tenants)
    placement = Placement(fleet, "binpack")
    ordered = sorted(tenants, key=lambda t: (-t.chunks, -t.demand_iops, t.name))
    for tenant in ordered:
        for server in fleet.servers():
            if _fits(server, tenant, placement):
                placement.assign(tenant, server)
                break
        else:
            raise PlacementError(
                f"no server can host tenant {tenant.name} "
                f"({tenant.chunks} chunks, {tenant.demand_iops} IOPS)")
    return placement


def place_qos(fleet: FleetSpec, tenants: tuple[TenantSpec, ...]) -> Placement:
    """Gold spread with reserved headroom; best-effort packed after.

    Servers hosting a gold tenant never exceed :data:`GOLD_HEADROOM` of
    their nominal IOPS — later best-effort tenants prefer gold-free
    servers and must respect the reduced cap when they do share.
    """
    _check(fleet, tenants)
    placement = Placement(fleet, "qos")
    gold = sorted((t for t in tenants if t.qos == "gold"),
                  key=lambda t: (-t.demand_iops, t.name))
    rest = sorted((t for t in tenants if t.qos != "gold"),
                  key=lambda t: (-t.chunks, -t.demand_iops, t.name))
    _spread_into(placement, gold, iops_cap_fraction=GOLD_HEADROOM)
    _qos_pack_into(placement, rest, set(placement.assignments.values()))
    return placement


def _qos_pack_into(placement: Placement, tenants: list[TenantSpec],
                   gold_servers: set[str]) -> None:
    """Best-effort tenants prefer gold-free servers and respect the
    reduced cap when they do share (the ``qos`` policy's second phase)."""
    for tenant in tenants:
        ordered = sorted(placement.fleet.servers(),
                         key=lambda s: (s.name in gold_servers, s.name))
        for server in ordered:
            cap = GOLD_HEADROOM if server.name in gold_servers else 1.0
            if _fits(server, tenant, placement, cap):
                placement.assign(tenant, server)
                break
        else:
            raise PlacementError(
                f"no server can host tenant {tenant.name} under QoS headroom")


POLICIES = {
    "spread": place_spread,
    "binpack": place_binpack,
    "qos": place_qos,
}


def place(fleet: FleetSpec, tenants: tuple[TenantSpec, ...],
          policy: str = "spread") -> Placement:
    try:
        fn = POLICIES[policy]
    except KeyError:
        raise PlacementError(
            f"unknown placement policy {policy!r}; one of {sorted(POLICIES)}"
        ) from None
    return fn(fleet, tuple(tenants))


def evacuate(placement: Placement, server_name: str) -> tuple[Placement, list[dict]]:
    """Drain one server: re-place its tenants on the remaining fleet.

    The control plane's reaction to a surprise hot-removal — everyone
    else stays put; the drained server's tenants are re-placed against
    the *residual* capacity under the placement's own policy (the
    ``qos`` policy keeps its gold-headroom reservation through the
    drain).  Returns the new placement and the move list (tenant, from,
    to).
    """
    placement.fleet.server(server_name)  # KeyError on unknown server
    evacuees = sorted(placement.tenants_on(server_name),
                      key=lambda t: (-t.demand_iops, t.name))
    residual_fleet = FleetSpec(racks=tuple(
        RackSpec(name=rack.name, servers=tuple(
            s for s in rack.servers if s.name != server_name))
        for rack in placement.fleet.racks
    ))
    out = Placement(residual_fleet, placement.policy)
    for tname, sname in placement.assignments.items():
        if sname != server_name:
            # look the ServerSpec up in the *residual* fleet: capacity
            # accounting must never mix the old and new fleet views
            out.assign(placement.tenants[tname], residual_fleet.server(sname))
    if placement.policy == "qos":
        gold = [t for t in evacuees if t.qos == "gold"]
        rest = [t for t in evacuees if t.qos != "gold"]
        _spread_into(out, gold, iops_cap_fraction=GOLD_HEADROOM)
        gold_servers = {
            out.server_of(t.name) for t in out.tenants.values()
            if t.qos == "gold"
        }
        _qos_pack_into(out, rest, gold_servers)
    else:
        _spread_into(out, list(evacuees))
    moves = [
        {"tenant": t.name, "from": server_name, "to": out.server_of(t.name)}
        for t in evacuees
    ]
    return out, moves
