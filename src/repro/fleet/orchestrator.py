"""Fleet maintenance control plane: rolling hot-upgrades in waves.

The orchestrator turns a :class:`~repro.fleet.topology.FleetSpec`, a
tenant list, and a placement policy into per-server
:class:`~repro.fleet.server_sim.ServerRunSpec` jobs, fans them over
:func:`repro.runner.parallel_map` workers (per-server seeds, so the
fan-out is byte-deterministic), and aggregates the payloads into a
fleet report:

* **waves** — failure-domain-aware rolling firmware hot-upgrade: at
  most ``max_per_domain`` servers of any rack are upgraded per wave,
  every server exactly once, with fleet-wide availability measured per
  wave window (the Fig. 15 story at fleet scale);
* **tenants** — per-tenant availability / p99 against the QoS class
  SLOs, with error-budget accounting from the measured windows;
* **maintenance** — reaction to armed fault presets: a surprise
  hot-removal observed in a server's fault log drains that server, and
  the control plane re-places its tenants on the residual fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runner import parallel_map
from ..sim.units import MS, sec
from .migration import (
    CHUNK_COPY_NS,
    COLD_CHUNK_COPY_NS,
    CUTOVER_NS,
    PRECOPY_ROUND_NS,
    PRECOPY_ROUNDS,
    MigrationArrival,
    MigrationPlan,
)
from .placement import Placement, evacuate, place
from .server_sim import ServerRunSpec, TenantAssignment, run_server
from .tenants import TenantSpec, make_tenants
from .topology import FleetSpec, build_fleet

__all__ = ["FleetRunConfig", "plan_waves", "run_fleet", "render_report"]


@dataclass(frozen=True)
class FleetRunConfig:
    """Timing/load knobs of one fleet run (everything simulated-time)."""

    max_per_domain: int = 1         # upgrade concurrency per failure domain
    start_ns: int = 200 * MS        # ramp before wave 0
    spacing_ns: int = 450 * MS      # wave period; must outlast one upgrade
    tail_ns: int = 200 * MS         # observation window after the last wave
    window_ns: int = 50 * MS        # availability accounting granularity
    pace_ns: int = 4 * MS           # per-worker inter-I/O gap
    activation_s: float = 0.08      # firmware activation (paper full: 6.5)
    fw_version: str = "FW-NEXT"
    fault_wave: int = 0             # armed preset fires mid this wave
    obs_mode: str = "counters"
    #: control-plane reaction to a surprise hot-removal: ``"none"``
    #: (report-only evacuation plan, the legacy behavior), ``"drain"``
    #: (stop the tenants, cold-copy, serve from the destination), or
    #: ``"migrate"`` (iterative pre-copy under live I/O + brief cutover,
    #: plus one warm-standby "prime" round ahead of every upgrade wave)
    reaction: str = "none"
    #: fault -> reaction delay; past the watchdog re-seat (~120 ms) so
    #: pre-copy runs against a serving source
    detect_ns: int = 150 * MS
    precopy_rounds: int = PRECOPY_ROUNDS
    precopy_round_ns: int = PRECOPY_ROUND_NS
    cutover_ns: int = CUTOVER_NS
    chunk_copy_ns: int = CHUNK_COPY_NS
    cold_chunk_copy_ns: int = COLD_CHUNK_COPY_NS

    @classmethod
    def quick(cls) -> "FleetRunConfig":
        """CI-sized run: short activation, ~2 s of simulated time."""
        return cls()

    @classmethod
    def full(cls) -> "FleetRunConfig":
        """Paper-scale activation (6.5 s) — heavy; use with workers."""
        return cls(spacing_ns=sec(8.0), tail_ns=sec(1.0),
                   activation_s=6.5, pace_ns=2 * MS, start_ns=500 * MS)


def plan_waves(fleet: FleetSpec, max_per_domain: int = 1) -> list[list[str]]:
    """Failure-domain-aware rolling schedule.

    Wave ``k`` takes the next ``max_per_domain`` not-yet-upgraded
    servers of *every* rack, so no wave ever has more than
    ``max_per_domain`` servers down in one failure domain, and every
    server appears in exactly one wave.
    """
    if max_per_domain < 1:
        raise ValueError("max_per_domain must be >= 1")
    waves: list[list[str]] = []
    depth = max(len(rack.servers) for rack in fleet.racks)
    k = 0
    while k * max_per_domain < depth:
        lo = k * max_per_domain
        wave = [
            s.name
            for rack in fleet.racks
            for s in rack.servers[lo:lo + max_per_domain]
        ]
        if wave:
            waves.append(wave)
        k += 1
    return waves


def _tenant_workers(tenant: TenantSpec) -> int:
    """Paced worker count scaled (deterministically) with demand."""
    return max(1, min(3, tenant.demand_iops // 60_000))


def _assignment(tenant: TenantSpec) -> TenantAssignment:
    qos = tenant.qos_class
    return TenantAssignment(
        name=tenant.name,
        qos=tenant.qos,
        capacity_bytes=tenant.capacity_bytes,
        read_fraction=tenant.read_fraction,
        block_bytes=tenant.block_bytes,
        workers=_tenant_workers(tenant),
        max_iops=qos.max_iops,
        max_mbps=qos.max_mbps,
        slo_availability=qos.slo_availability,
        slo_p99_us=qos.slo_p99_us,
    )


def _wave_availability(payloads: list[dict], lo_ns: int, hi_ns: int,
                       window_ns: int) -> float:
    """Mean over every tenant of its available-window fraction in range."""
    lo, hi = lo_ns // window_ns, hi_ns // window_ns
    fractions = []
    for payload in payloads:
        for tenant in payload["tenants"]:
            windows = tenant["windows"][lo:hi]
            if windows:
                fractions.append(
                    sum(1 for r in windows if r > 0.0) / len(windows))
    return sum(fractions) / len(fractions) if fractions else 1.0


def run_fleet(
    fleet: FleetSpec | None = None,
    tenants: tuple[TenantSpec, ...] | None = None,
    policy: str = "spread",
    faults: str | None = None,
    seed: int = 7,
    workers: int | None = None,
    config: FleetRunConfig | None = None,
) -> dict:
    """Place tenants, run the rolling upgrade, return the fleet report.

    ``workers`` fans the per-server simulations over processes; each
    server world is rebuilt from its own spec and seed, so the report
    is byte-identical for any worker count.
    """
    fleet = fleet or build_fleet()
    tenants = tuple(tenants) if tenants is not None else make_tenants(
        2 * len(fleet), seed=seed)
    config = config or FleetRunConfig.quick()

    placement = place(fleet, tenants, policy)
    waves = plan_waves(fleet, config.max_per_domain)
    run_ns = config.start_ns + len(waves) * config.spacing_ns + config.tail_ns
    wave_of = {name: k for k, wave in enumerate(waves) for name in wave}

    # an armed preset fires on the first tenant-hosting server, mid its
    # configured wave — deterministic, independent of worker count
    fault_server = None
    if faults is not None:
        hosting = [s.name for s in fleet.servers()
                   if placement.tenants_on(s.name)]
        if not hosting:
            raise ValueError("cannot arm faults on a fleet with no tenants")
        fault_server = hosting[0]
    fault_at_ns = (config.start_ns
                   + config.fault_wave * config.spacing_ns
                   + config.spacing_ns // 2)

    # migration/drain schedules are cut *before* the run, entirely from
    # the armed fault time and the evacuation plan, so every server
    # world executes a fixed script — the fan-out stays byte-identical
    # for any worker count
    if config.reaction not in ("none", "drain", "migrate"):
        raise ValueError(
            f"unknown reaction {config.reaction!r}; "
            "one of ['drain', 'migrate', 'none']")
    reaction = config.reaction if fault_server is not None else "none"
    migrate_out: dict[str, list[MigrationPlan]] = {}
    migrate_in: dict[str, list[MigrationArrival]] = {}
    planned_placement: Placement | None = None
    planned_moves: list[dict] = []
    if reaction != "none":
        react_at_ns = fault_at_ns + config.detect_ns
        planned_placement, planned_moves = evacuate(placement, fault_server)
        for move in planned_moves:
            tenant = placement.tenants[move["tenant"]]
            plan = MigrationPlan(
                tenant=tenant.name, mode=reaction, dest=move["to"],
                start_ns=react_at_ns,
                rounds=config.precopy_rounds,
                round_ns=config.precopy_round_ns,
                cutover_ns=config.cutover_ns,
                chunk_copy_ns=config.chunk_copy_ns,
                cold_chunk_copy_ns=config.cold_chunk_copy_ns,
            )
            migrate_out.setdefault(fault_server, []).append(plan)
            migrate_in.setdefault(move["to"], []).append(MigrationArrival(
                tenant=_assignment(tenant),
                serve_from_ns=plan.handover_ns(tenant.chunks),
                source=fault_server,
                mode=reaction,
            ))
    if reaction == "migrate":
        # planned waves get a warm-standby pre-copy round too, so the
        # ledger can tell planned primes from the unplanned migration
        departing = {m["tenant"] for m in planned_moves}
        for server in fleet.servers():
            up_at = config.start_ns + wave_of[server.name] * config.spacing_ns
            for t in sorted(placement.tenants_on(server.name),
                            key=lambda t: t.name):
                if t.name in departing:
                    continue
                migrate_out.setdefault(server.name, []).append(MigrationPlan(
                    tenant=t.name, mode="prime", dest="",
                    start_ns=max(0, up_at - config.precopy_round_ns),
                    rounds=1,
                    round_ns=config.precopy_round_ns,
                    cutover_ns=config.cutover_ns,
                    chunk_copy_ns=config.chunk_copy_ns,
                    cold_chunk_copy_ns=config.cold_chunk_copy_ns,
                ))

    specs = []
    for idx, server in enumerate(fleet.servers()):
        wave_k = wave_of[server.name]
        armed = faults if server.name == fault_server else None
        specs.append(ServerRunSpec(
            server=server.name,
            rack=server.rack,
            seed=seed * 100_003 + idx,
            num_ssds=server.num_ssds,
            tenants=tuple(
                _assignment(t)
                for t in sorted(placement.tenants_on(server.name),
                                key=lambda t: t.name)
            ),
            run_ns=run_ns,
            window_ns=config.window_ns,
            pace_ns=config.pace_ns,
            upgrade_at_ns=config.start_ns + wave_k * config.spacing_ns,
            activation_s=config.activation_s,
            fw_version=config.fw_version,
            faults=armed,
            fault_at_ns=fault_at_ns,
            obs_mode=config.obs_mode,
            migrate_out=tuple(migrate_out.get(server.name, ())),
            migrate_in=tuple(migrate_in.get(server.name, ())),
        ))

    payloads = parallel_map(run_server, specs, workers=workers)
    by_server = {p["server"]: p for p in payloads}

    wave_rows = []
    for k, wave in enumerate(waves):
        lo = config.start_ns + k * config.spacing_ns
        hi = lo + config.spacing_ns
        upgraded = [by_server[name] for name in wave]
        pauses = [u["io_pause_s"] for p in upgraded for u in p["upgrades"]]
        totals = [u["total_s"] for p in upgraded for u in p["upgrades"]]
        wave_rows.append({
            "wave": k,
            "servers": list(wave),
            "domains": sorted({by_server[n]["rack"] for n in wave}),
            "started_s": lo / 1e9,
            "fleet_availability": _wave_availability(
                payloads, lo, hi, config.window_ns),
            "avg_upgrade_total_s": sum(totals) / len(totals) if totals else 0.0,
            "avg_io_pause_s": sum(pauses) / len(pauses) if pauses else 0.0,
            "upgrades_ok": all(u["ok"] for p in upgraded
                               for u in p["upgrades"]),
        })

    # a migrated tenant's truth spans two servers: its source windows
    # and its destination (arrival) windows merge elementwise, so
    # availability sees the union of where it was actually served
    arrival_rows: dict[str, tuple[str, dict]] = {}
    for payload in payloads:
        for row in payload["arrivals"]:
            arrival_rows[row["tenant"]] = (payload["server"], row)

    # SLO accounting excludes each server's *planned* maintenance wave
    # (the SRE convention: scheduled upgrades spend no error budget);
    # raw availability still reports the planned dip.
    tenant_rows = []
    for payload in payloads:
        up_lo = payload["upgrade_at_ns"] // config.window_ns
        up_hi = (payload["upgrade_at_ns"] + config.spacing_ns) // config.window_ns
        for t in payload["tenants"]:
            home, migrated_from = payload["server"], None
            dest = arrival_rows.get(t["tenant"])
            if dest is not None:
                home, arow = dest
                migrated_from = payload["server"]
                windows = [a + b for a, b in zip(t["windows"], arow["windows"])]
                t = {**t, "windows": windows,
                     "ios": t["ios"] + arow["ios"],
                     "errors": t["errors"] + arow["errors"],
                     "p99_us": max(t["p99_us"], arow["p99_us"]),
                     "availability": (sum(1 for r in windows if r > 0.0)
                                      / len(windows)) if windows else 1.0}
            unplanned = [r for i, r in enumerate(t["windows"])
                         if not up_lo <= i < up_hi]
            unplanned_avail = (
                sum(1 for r in unplanned if r > 0.0) / len(unplanned)
                if unplanned else 1.0)
            budget = 1.0 - t["slo_availability"]
            unavail = 1.0 - unplanned_avail
            row = {
                "tenant": t["tenant"],
                "server": home,
                "qos": t["qos"],
                "ios": t["ios"],
                "errors": t["errors"],
                "availability": t["availability"],
                "unplanned_availability": unplanned_avail,
                "slo_availability": t["slo_availability"],
                "availability_met": unplanned_avail >= t["slo_availability"],
                "error_budget_consumed": unavail / budget if budget else 0.0,
                "p99_us": t["p99_us"],
                "slo_p99_us": t["slo_p99_us"],
                "p99_met": t["p99_us"] <= t["slo_p99_us"],
            }
            if migrated_from is not None:
                # migrated rows keep their merged window series: the
                # migrate-vs-drain experiments analyze the dip shape
                row["migrated_from"] = migrated_from
                row["windows"] = t["windows"]
            tenant_rows.append(row)
    tenant_rows.sort(key=lambda r: r["tenant"])

    # control-plane reaction to a surprise removal in the fault logs:
    # legacy "none" re-places on paper only; "drain"/"migrate" executed
    # their pre-cut schedules, so the ledger records what actually ran,
    # with planned primes kept apart from the unplanned migration
    maintenance: dict = {"drained": [], "moves": []}
    current: Placement = placement
    if reaction == "none":
        for payload in payloads:
            if "hot_remove" in payload["fault_kinds"]:
                current, moves = evacuate(current, payload["server"])
                maintenance["drained"].append(payload["server"])
                maintenance["moves"].extend(moves)
    else:
        current = planned_placement
        protocol = {m["tenant"]: m
                    for p in payloads for m in p["migrations"]
                    if m["mode"] != "prime"}
        maintenance["reaction"] = reaction
        maintenance["drained"] = [fault_server] if reaction == "drain" else []
        maintenance["migrated"] = [fault_server] if reaction == "migrate" else []
        maintenance["planned_primes"] = sum(
            1 for p in payloads for m in p["migrations"]
            if m["mode"] == "prime")
        for mv in planned_moves:
            move = {**mv, "mode": reaction}
            stats = protocol.get(mv["tenant"])
            if stats is not None:
                move.update(
                    start_ns=stats["start_ns"],
                    handover_ns=stats["handover_ns"],
                    chunks=stats["chunks"],
                    precopy_rounds=stats["rounds"],
                    final_dirty=stats["final_dirty"],
                )
            maintenance["moves"].append(move)

    availabilities = [r["availability"] for r in tenant_rows]
    return {
        "fleet": {**fleet.describe(), "tenants": len(tenants),
                  "policy": policy, "seed": seed, "faults": faults,
                  "waves": len(waves), "run_s": run_ns / 1e9,
                  "activation_s": config.activation_s},
        "placement": placement.describe(),
        "waves": wave_rows,
        "tenants": tenant_rows,
        "servers": [{
            "server": p["server"], "rack": p["rack"], "ios": p["ios"],
            "errors": p["errors"], "upgrades": p["upgrades"],
            "faults_injected": p["faults_injected"],
            "fault_kinds": p["fault_kinds"],
            "bmsc_recoveries": p["bmsc_recoveries"],
            "sim_events": p["sim_events"],
        } for p in payloads],
        "maintenance": maintenance,
        "summary": {
            "fleet_availability": (sum(availabilities) / len(availabilities)
                                   if availabilities else 1.0),
            "servers_upgraded": sum(len(w["servers"]) for w in wave_rows),
            "upgrades_ok": all(w["upgrades_ok"] for w in wave_rows),
            "ios": sum(p["ios"] for p in payloads),
            "errors": sum(p["errors"] for p in payloads),
            "slo_availability_violations": sum(
                1 for r in tenant_rows if not r["availability_met"]),
            "slo_p99_violations": sum(
                1 for r in tenant_rows if not r["p99_met"]),
            "drained_servers": len(maintenance["drained"]),
            "migrated_servers": len(maintenance.get("migrated", [])),
            "migrated_tenants": sum(
                1 for mv in maintenance["moves"]
                if mv.get("mode") == "migrate"),
        },
    }


def render_report(report: dict) -> str:
    """Human-readable fleet report (the CLI's non-JSON output)."""
    f = report["fleet"]
    lines = [
        f"fleet: {f['servers']} servers / {f['racks']} racks / "
        f"{f['ssds']} SSDs, {f['tenants']} tenants, policy={f['policy']}, "
        f"seed={f['seed']}"
        + (f", faults={f['faults']}" if f["faults"] else ""),
        f"rolling upgrade: {f['waves']} waves over {f['run_s']:.1f}s "
        f"simulated (activation {f['activation_s']:.2f}s)",
        "",
        "  wave | servers | domains | availability | avg total s | avg pause s",
    ]
    for w in report["waves"]:
        lines.append(
            f"  {w['wave']:>4} | {len(w['servers']):>7} | "
            f"{len(w['domains']):>7} | {w['fleet_availability']:>12.1%} | "
            f"{w['avg_upgrade_total_s']:>11.2f} | {w['avg_io_pause_s']:>11.2f}")
    s = report["summary"]
    lines += [
        "",
        f"fleet availability {s['fleet_availability']:.2%} over the whole "
        f"run; {s['ios']} tenant I/Os, {s['errors']} errors",
        f"SLO violations: {s['slo_availability_violations']} availability, "
        f"{s['slo_p99_violations']} p99 "
        f"(of {len(report['tenants'])} tenants)",
    ]
    if s["drained_servers"]:
        m = report["maintenance"]
        lines.append(
            f"maintenance: drained {', '.join(m['drained'])} after surprise "
            f"hot-removal; re-placed {len(m['moves'])} tenant(s): "
            + ", ".join(f"{mv['tenant']}->{mv['to']}" for mv in m["moves"]))
    if s.get("migrated_servers"):
        m = report["maintenance"]
        lines.append(
            f"maintenance: live-migrated {', '.join(m['migrated'])} after "
            f"surprise hot-removal ({len(m['moves'])} tenant(s), "
            f"{m.get('planned_primes', 0)} planned prime round(s)): "
            + ", ".join(f"{mv['tenant']}->{mv['to']}" for mv in m["moves"]))
    return "\n".join(lines)
