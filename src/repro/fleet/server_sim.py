"""One fleet server's simulation: a fresh BM-Store world per spec.

:class:`ServerRunSpec` is pure picklable data (like
:class:`repro.runner.RunSpec`): server identity, its own seed, the
tenants placed on it, when its rolling-upgrade wave fires, and an
optional fault preset.  :func:`run_server` rebuilds the whole world from
the spec inside whatever process it lands in, so fanning a fleet over
``repro.runner.parallel_map`` workers returns byte-identical payloads
to a sequential loop.

Tenant load is paced (the fig15 recipe): a handful of workers per
tenant issuing one I/O every ``pace_ns``, each completion ticking a
:class:`~repro.sim.SeriesRecorder` — so availability windows, upgrade
pauses, and fault dips are visible without saturating the event budget
across a 24+ server fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..baselines import build_bmstore
from ..core.qos import QoSLimits
from ..faults import FaultPlan, get_preset
from ..obs import MetricsRegistry
from ..sim import SeriesRecorder
from ..sim.units import MS
from .migration import MigrationArrival, MigrationPlan

__all__ = ["TenantAssignment", "ServerRunSpec", "run_server", "shifted_preset"]


@dataclass(frozen=True)
class TenantAssignment:
    """One tenant as provisioned on one server (picklable)."""

    name: str
    qos: str
    capacity_bytes: int
    read_fraction: float
    block_bytes: int
    workers: int
    max_iops: float | None = None
    max_mbps: float | None = None
    slo_availability: float = 0.99
    slo_p99_us: float = 20_000.0


@dataclass(frozen=True)
class ServerRunSpec:
    """Everything needed to rebuild and run one server's world."""

    server: str
    rack: str
    seed: int
    num_ssds: int = 1
    tenants: tuple[TenantAssignment, ...] = ()
    run_ns: int = 2_000 * MS
    window_ns: int = 50 * MS
    pace_ns: int = 4 * MS
    upgrade_at_ns: int = -1          # -1 = this server is not upgraded
    activation_s: float = 0.08
    fw_version: str = "FW-NEXT"
    faults: str | None = None        # preset name, armed shifted to fault_at_ns
    fault_at_ns: int = 0
    obs_mode: str = "counters"
    #: tenants scheduled to leave this server (MigrationPlan tuple)
    migrate_out: tuple = ()
    #: tenants scheduled to arrive here (MigrationArrival tuple)
    migrate_in: tuple = ()
    #: arm the engine's CXL buffer tier on this server (0 = dormant,
    #: keeping the payload byte-identical to pre-CXL builds)
    cxl: bool = False


def shifted_preset(name: str, fault_at_ns: int) -> FaultPlan:
    """The canned plan with its schedule translated to ``fault_at_ns``.

    Presets are timed for the quick fio cases (faults at ~10 ms); a
    fleet run spans seconds, so the earliest spec is moved to
    ``fault_at_ns`` and every other spec keeps its relative offset.
    """
    plan = get_preset(name)
    if not plan.specs:
        return plan
    offset = fault_at_ns - min(s.at_ns for s in plan.specs)
    shifted = FaultPlan(driver_policy=plan.driver_policy)
    for spec in plan.specs:
        shifted.add(replace(spec, at_ns=spec.at_ns + offset))
    return shifted


def _p99_us(samples_ns: list[int]) -> float:
    if not samples_ns:
        return 0.0
    ordered = sorted(samples_ns)
    idx = min(len(ordered) - 1, max(0, -(-99 * len(ordered) // 100) - 1))
    return ordered[idx] / 1e3


def run_server(spec: ServerRunSpec) -> dict:
    """Simulate one server end to end; returns its JSON-able payload.

    Module-level (not a closure) so multiprocessing can import it by
    name in spawned workers.  Floats stay at full precision: parallel
    and sequential fleet runs must serialize identically.
    """
    plan = shifted_preset(spec.faults, spec.fault_at_ns) if spec.faults else None
    obs = MetricsRegistry(mode=spec.obs_mode)
    rig = build_bmstore(num_ssds=spec.num_ssds, seed=spec.seed, obs=obs,
                        faults=plan)
    sim = rig.sim
    if spec.cxl:
        rig.engine.cxl_tier()

    drivers = {}
    series = {}
    stats = {}
    stop = {}

    def provision_tenant(tenant: TenantAssignment) -> None:
        limits = None
        if tenant.max_iops is not None or tenant.max_mbps is not None:
            limits = QoSLimits(
                max_iops=tenant.max_iops,
                max_bytes_per_sec=(tenant.max_mbps * 1e6
                                   if tenant.max_mbps is not None else None),
            )
        fn = rig.provision(tenant.name, tenant.capacity_bytes, limits=limits)
        drivers[tenant.name] = rig.baremetal_driver(fn)
        series[tenant.name] = SeriesRecorder(sim, window_ns=spec.window_ns)
        stats[tenant.name] = {"ios": 0, "errors": 0, "lat_ns": []}
        stop[tenant.name] = False

    for tenant in spec.tenants:
        provision_tenant(tenant)
    # migrated-in tenants are provisioned up front (the destination's
    # namespace exists from the moment the plan is cut) but stay idle
    # until their scheduled handover
    for arrival in spec.migrate_in:
        provision_tenant(arrival.tenant)

    def tenant_worker(tenant: TenantAssignment, tag: int):
        driver = drivers[tenant.name]
        rec, st = series[tenant.name], stats[tenant.name]
        blocks = max(1, tenant.block_bytes // 4096)
        span = max(blocks, driver.num_blocks - blocks)
        lba = (tag * 7919 * blocks) % span
        # deterministic read/write interleave: the first N ops of every
        # 10-op cycle read, matching the profile's mix to 10%
        reads = round(tenant.read_fraction * 10)
        k = 0
        while not stop[tenant.name]:
            t0 = sim.now
            if k % 10 < reads:
                info = yield driver.read(lba, blocks)
            else:
                info = yield driver.write(lba, blocks)
            st["ios"] += 1
            st["lat_ns"].append(sim.now - t0)
            if info.ok:
                rec.tick()
            else:
                st["errors"] += 1
            lba = (lba + 7919 * blocks) % span
            k += 1
            yield sim.timeout(spec.pace_ns)

    upgrades: list[dict] = []
    migrations: list[dict] = []

    def orchestrate():
        if spec.upgrade_at_ns >= 0:
            yield sim.timeout(spec.upgrade_at_ns)
            for ssd_id in range(spec.num_ssds):
                resp = yield rig.console.hot_upgrade(
                    ssd_id, version=spec.fw_version,
                    activation_s=spec.activation_s)
                upgrades.append(dict(resp.body))
        if sim.now < spec.run_ns:
            yield sim.timeout(spec.run_ns - sim.now)
        for name in stop:
            stop[name] = True

    def migrate_proc(plan: MigrationPlan):
        """Execute one departure plan against this server's world."""
        ens = rig.engine.namespaces[plan.tenant]
        rec = {"tenant": plan.tenant, "mode": plan.mode, "dest": plan.dest,
               "start_ns": plan.start_ns, "chunks": len(ens.chunks),
               "rounds": [], "final_dirty": 0, "handover_ns": 0}
        yield sim.timeout(plan.start_ns)
        if plan.mode == "drain":
            # stop-the-world: tenant is dark for the whole cold copy
            stop[plan.tenant] = True
            yield sim.timeout(len(ens.chunks) * plan.cold_chunk_copy_ns)
            rec["handover_ns"] = sim.now
            migrations.append(rec)
            return
        # iterative pre-copy: round 0 copies everything; each later
        # round re-copies only what the write path dirtied meanwhile
        ens.dirty_chunks = set(range(len(ens.chunks)))
        for _ in range(plan.rounds):
            rec["rounds"].append(len(ens.dirty_chunks))
            ens.dirty_chunks.clear()
            yield sim.timeout(plan.round_ns)
        if plan.mode == "prime":
            # warm standby ahead of a planned wave: no stop, no dest
            rec["final_dirty"] = len(ens.dirty_chunks)
            ens.dirty_chunks = None
            migrations.append(rec)
            return
        stop[plan.tenant] = True
        rec["final_dirty"] = len(ens.dirty_chunks)
        ens.dirty_chunks = None
        yield sim.timeout(plan.cutover_ns)
        rec["handover_ns"] = sim.now
        migrations.append(rec)

    def arrival_proc(arrival: MigrationArrival):
        yield sim.timeout(arrival.serve_from_ns)
        for tag in range(arrival.tenant.workers):
            sim.process(tenant_worker(arrival.tenant, tag),
                        name=f"{arrival.tenant.name}.{tag}")

    for tenant in spec.tenants:
        for tag in range(tenant.workers):
            sim.process(tenant_worker(tenant, tag),
                        name=f"{tenant.name}.{tag}")
    for plan in spec.migrate_out:
        sim.process(migrate_proc(plan), name=f"{plan.tenant}.migrate")
    for arrival in spec.migrate_in:
        sim.process(arrival_proc(arrival), name=f"{arrival.tenant.name}.arrive")
    sim.run(sim.process(orchestrate(), name=f"{spec.server}.orch"))
    # drain in-flight retries so error/latency accounting is complete
    sim.run(until=sim.now + 100 * MS)

    nwindows = spec.run_ns // spec.window_ns

    def tenant_out(tenant: TenantAssignment) -> dict:
        st = stats[tenant.name]
        rates = [rate for t, rate in
                 series[tenant.name].series(0, spec.run_ns)][:nwindows]
        rates += [0.0] * (nwindows - len(rates))
        available = sum(1 for r in rates if r > 0.0)
        return {
            "tenant": tenant.name,
            "qos": tenant.qos,
            "ios": st["ios"],
            "errors": st["errors"],
            "availability": available / nwindows if nwindows else 1.0,
            "windows": rates,
            "p99_us": _p99_us(st["lat_ns"]),
            "slo_availability": tenant.slo_availability,
            "slo_p99_us": tenant.slo_p99_us,
        }

    tenants_out = [tenant_out(t) for t in spec.tenants]
    arrivals_out = [
        {**tenant_out(a.tenant), "source": a.source, "mode": a.mode,
         "serve_from_ns": a.serve_from_ns}
        for a in spec.migrate_in
    ]

    fault_kinds = sorted({e["kind"] for e in rig.controller.fault_log})
    payload_extra = {}
    if spec.cxl:
        # only armed servers grow the key: dormant payloads must stay
        # byte-identical to pre-CXL builds
        payload_extra["cxl"] = rig.engine.cxl.stat()
    return {
        **payload_extra,
        "server": spec.server,
        "rack": spec.rack,
        "seed": spec.seed,
        "upgrade_at_ns": spec.upgrade_at_ns,
        "upgrades": upgrades,
        "tenants": tenants_out,
        "arrivals": arrivals_out,
        "migrations": sorted(migrations, key=lambda m: m["tenant"]),
        "ios": sum(t["ios"] for t in tenants_out + arrivals_out),
        "errors": sum(t["errors"] for t in tenants_out + arrivals_out),
        "faults": spec.faults,
        "faults_injected": rig.faults.injected if rig.faults is not None else 0,
        "fault_kinds": fault_kinds,
        "bmsc_recoveries": rig.controller.recoveries,
        "sim_events": sim.events_processed,
    }
