"""Tenant demand models composed from the existing workload tables.

Each :class:`TenantProfile` borrows its I/O shape from one of the
paper's Table IV fio cases and its read/write mix from the YCSB and
TPC-C tables already in :mod:`repro.workloads` — the fleet simulation
runs the same op shapes the single-server experiments run, just placed
many-per-server and scaled per tenant.

``make_tenants`` is the deterministic tenant generator: the same
``(count, seed)`` always yields the identical tuple of
:class:`TenantSpec`, with load factors quantized to quarters so scaled
demands stay exactly representable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.lba_mapping import CHUNK_BYTES
from ..sim import RandomStream
from ..workloads.fio import TABLE_IV_CASES
from ..workloads.ycsb import YCSB_WORKLOADS

__all__ = [
    "QOS_CLASSES",
    "QoSClass",
    "TenantProfile",
    "TENANT_PROFILES",
    "TenantSpec",
    "make_tenants",
]

#: share of TPC-C transactions that only read (Stock-Level + Order-Status
#: of the standard mix in :mod:`repro.workloads.tpcc`), used as the OLTP
#: profile's read fraction
_TPCC_READ_FRACTION = 0.65


@dataclass(frozen=True)
class QoSClass:
    """SLO targets plus the per-namespace caps provisioned on the card."""

    name: str
    slo_availability: float     # fraction of 50 ms windows that must serve I/O
    slo_p99_us: float
    max_iops: float | None      # None = uncapped (gold)
    max_mbps: float | None


QOS_CLASSES: dict[str, QoSClass] = {
    "gold": QoSClass("gold", 0.999, 2_000.0, None, None),
    "silver": QoSClass("silver", 0.995, 5_000.0, 200_000.0, 1_500.0),
    "bronze": QoSClass("bronze", 0.99, 20_000.0, 50_000.0, 400.0),
}


@dataclass(frozen=True)
class TenantProfile:
    """A workload archetype: fio shape + mix + baseline demand."""

    name: str
    case: str                   # Table IV case supplying block size / depth
    read_fraction: float
    demand_iops: int            # placement accounting, before load scaling
    capacity_gib: int           # before load scaling
    qos: str

    def __post_init__(self) -> None:
        if self.case not in TABLE_IV_CASES:
            raise ValueError(f"profile {self.name}: unknown fio case {self.case!r}")
        if self.qos not in QOS_CLASSES:
            raise ValueError(f"profile {self.name}: unknown QoS class {self.qos!r}")

    @property
    def block_bytes(self) -> int:
        return TABLE_IV_CASES[self.case].block_bytes


TENANT_PROFILES: dict[str, TenantProfile] = {
    # YCSB-B front cache: 95% reads at 4K
    "web-cache": TenantProfile(
        "web-cache", "rand-r-128", YCSB_WORKLOADS["B"].read, 120_000, 256, "silver"),
    # YCSB-A session store: 50/50 update-heavy
    "kv-store": TenantProfile(
        "kv-store", "rand-w-16", YCSB_WORKLOADS["A"].read, 80_000, 128, "gold"),
    # TPC-C style OLTP: latency-sensitive low-depth mix
    "oltp": TenantProfile(
        "oltp", "rand-r-1", _TPCC_READ_FRACTION, 40_000, 512, "gold"),
    # YCSB-C scans-as-streams: large sequential reads
    "analytics": TenantProfile(
        "analytics", "seq-r-256", YCSB_WORKLOADS["C"].read, 20_000, 1024, "bronze"),
    # append-only log shipping
    "logging": TenantProfile(
        "logging", "seq-w-256", 0.0, 10_000, 256, "bronze"),
}

#: fixed rotation order so tenant i's profile never depends on dict order
_PROFILE_ORDER = ("web-cache", "kv-store", "oltp", "analytics", "logging")


@dataclass(frozen=True)
class TenantSpec:
    """One placed-able tenant: a scaled instance of a profile."""

    name: str
    profile: str
    load: float                 # quantized scale factor on the profile
    demand_iops: int
    capacity_bytes: int
    qos: str
    read_fraction: float
    block_bytes: int

    @property
    def chunks(self) -> int:
        """Engine chunks this tenant's namespace will consume."""
        return max(1, -(-self.capacity_bytes // CHUNK_BYTES))

    @property
    def qos_class(self) -> QoSClass:
        return QOS_CLASSES[self.qos]


def scale_profile(profile: TenantProfile, name: str, load: float) -> TenantSpec:
    """One tenant from a profile with deterministic load scaling.

    Capacity is rounded to whole 64 GiB chunks (the engine's allocation
    unit) so placement arithmetic is exact.
    """
    chunks = max(1, round(profile.capacity_gib * load / 64))
    return TenantSpec(
        name=name,
        profile=profile.name,
        load=load,
        demand_iops=int(profile.demand_iops * load),
        capacity_bytes=chunks * CHUNK_BYTES,
        qos=profile.qos,
        read_fraction=profile.read_fraction,
        block_bytes=profile.block_bytes,
    )


def make_tenants(count: int, seed: int = 7, load: float = 1.0) -> tuple[TenantSpec, ...]:
    """``count`` tenants cycling the profile rotation, loads seeded.

    Per-tenant load factors are ``randint(2, 6) / 4`` (0.5x .. 1.5x)
    from one named stream, times the global ``load`` multiplier —
    quantized so every derived demand is an exact integer.
    """
    if count < 0:
        raise ValueError("tenant count must be >= 0")
    rng = RandomStream(seed, name="fleet.tenants")
    out = []
    for i in range(count):
        profile = TENANT_PROFILES[_PROFILE_ORDER[i % len(_PROFILE_ORDER)]]
        factor = (rng.randint(2, 6) / 4.0) * load
        out.append(scale_profile(profile, f"t{i:03d}-{profile.name}", factor))
    return tuple(out)
