"""repro.fleet — datacenter-scale deployment simulation.

The paper argues BM-Store at fleet scale (thousands of servers managed
out of band, hot-upgrades without tenant downtime); this package models
that dimension: a :class:`FleetSpec` of racks and servers, tenant
demand profiles composed from the existing workload tables, placement
policies, and a rolling hot-upgrade orchestrator that fans per-server
BM-Store simulations over :mod:`repro.runner` workers deterministically.

Entry points: :func:`build_fleet` + :func:`make_tenants` +
:func:`run_fleet`, or ``python -m repro fleet`` from the CLI.
"""

from .migration import MigrationArrival, MigrationPlan
from .orchestrator import FleetRunConfig, plan_waves, render_report, run_fleet
from .placement import POLICIES, Placement, PlacementError, evacuate, place
from .server_sim import ServerRunSpec, TenantAssignment, run_server, shifted_preset
from .tenants import (
    QOS_CLASSES,
    TENANT_PROFILES,
    QoSClass,
    TenantProfile,
    TenantSpec,
    make_tenants,
)
from .topology import FleetSpec, RackSpec, ServerSpec, build_fleet

__all__ = [
    "FleetSpec",
    "RackSpec",
    "ServerSpec",
    "build_fleet",
    "QOS_CLASSES",
    "QoSClass",
    "TENANT_PROFILES",
    "TenantProfile",
    "TenantSpec",
    "make_tenants",
    "POLICIES",
    "Placement",
    "PlacementError",
    "place",
    "evacuate",
    "MigrationArrival",
    "MigrationPlan",
    "ServerRunSpec",
    "TenantAssignment",
    "run_server",
    "shifted_preset",
    "FleetRunConfig",
    "plan_waves",
    "render_report",
    "run_fleet",
]
