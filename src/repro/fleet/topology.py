"""Fleet topology: racks (failure domains) of BM-Store servers.

A :class:`FleetSpec` is pure data — the control plane's inventory.  Each
:class:`ServerSpec` describes one bare-metal host carrying one BM-Store
card with ``num_ssds`` backend drives; its capacity is expressed in the
engine's own allocation unit (64 GiB chunks, see
:mod:`repro.core.lba_mapping`) so placement can never promise space the
engine would refuse to carve.

Racks are the failure domains: the orchestrator upgrades at most
``max_per_domain`` servers of one rack per wave, and the spread
placement policy balances tenants across racks before it balances
across servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.lba_mapping import CHUNK_BYTES
from ..nvme.flash import P4510_PROFILE

__all__ = [
    "NOMINAL_SSD_IOPS",
    "ServerSpec",
    "RackSpec",
    "FleetSpec",
    "build_fleet",
]

#: nominal 4K random-read capability of one backend drive, used only
#: for placement accounting (the P4510 datasheet number, not a promise
#: the simulation enforces)
NOMINAL_SSD_IOPS = 640_000

#: chunks one backend drive contributes to the engine's free pool
CHUNKS_PER_SSD = int(P4510_PROFILE.capacity_bytes // CHUNK_BYTES)


@dataclass(frozen=True)
class ServerSpec:
    """One bare-metal server: a BM-Store card plus backend drives."""

    name: str
    rack: str
    num_ssds: int = 1

    @property
    def chunk_capacity(self) -> int:
        """Namespace chunks the engine can carve on this server."""
        return self.num_ssds * CHUNKS_PER_SSD

    @property
    def capacity_bytes(self) -> int:
        return self.chunk_capacity * CHUNK_BYTES

    @property
    def iops_capacity(self) -> int:
        return self.num_ssds * NOMINAL_SSD_IOPS


@dataclass(frozen=True)
class RackSpec:
    """One failure domain (shared power/switch in the paper's DC model)."""

    name: str
    servers: tuple[ServerSpec, ...]


@dataclass(frozen=True)
class FleetSpec:
    """The whole inventory, rack-major and deterministic in order."""

    racks: tuple[RackSpec, ...]

    def servers(self) -> tuple[ServerSpec, ...]:
        return tuple(s for rack in self.racks for s in rack.servers)

    def server(self, name: str) -> ServerSpec:
        for rack in self.racks:
            for s in rack.servers:
                if s.name == name:
                    return s
        raise KeyError(f"no server {name!r} in fleet")

    def domain_of(self, server_name: str) -> str:
        return self.server(server_name).rack

    def domains(self) -> tuple[str, ...]:
        return tuple(rack.name for rack in self.racks)

    def __iter__(self) -> Iterator[ServerSpec]:
        return iter(self.servers())

    def __len__(self) -> int:
        return sum(len(rack.servers) for rack in self.racks)

    @property
    def total_chunks(self) -> int:
        return sum(s.chunk_capacity for s in self.servers())

    @property
    def total_iops(self) -> int:
        return sum(s.iops_capacity for s in self.servers())

    def describe(self) -> dict:
        """Stable JSON-able summary (reports / CLI)."""
        return {
            "servers": len(self),
            "racks": len(self.racks),
            "ssds": sum(s.num_ssds for s in self.servers()),
            "capacity_chunks": self.total_chunks,
            "nominal_iops": self.total_iops,
        }


def build_fleet(
    num_servers: int = 24,
    num_racks: int = 6,
    ssds_per_server: int = 1,
) -> FleetSpec:
    """A regular fleet: ``num_servers`` spread round-robin over racks.

    Naming is positional (``r0s0``, ``r0s1``, ... within rack ``r0``) so
    the same arguments always build the byte-identical inventory.
    """
    if num_servers < 1 or num_racks < 1 or ssds_per_server < 1:
        raise ValueError("fleet needs >= 1 server, rack, and SSD per server")
    num_racks = min(num_racks, num_servers)
    per_rack: list[list[ServerSpec]] = [[] for _ in range(num_racks)]
    for i in range(num_servers):
        rack_id = i % num_racks
        name = f"r{rack_id}s{len(per_rack[rack_id])}"
        per_rack[rack_id].append(
            ServerSpec(name=name, rack=f"r{rack_id}", num_ssds=ssds_per_server)
        )
    return FleetSpec(racks=tuple(
        RackSpec(name=f"r{rid}", servers=tuple(servers))
        for rid, servers in enumerate(per_rack)
    ))
