"""Live migration protocol for fleet tenants: pre-copy + brief cutover.

The control plane's alternative to draining a server after a surprise
hot-removal.  A *drain* stops the tenant at detection time and cold-
copies every chunk before the destination can serve — the outage grows
with volume size.  A *migration* keeps tenant I/O flowing on the source
through a bounded number of iterative pre-copy rounds (the write path
feeds a dirty-chunk bitmap, each round re-copies only what was dirtied
since the last), then pays one brief stop-and-copy cutover bounded by
the final dirty set — the outage is a constant independent of volume
size.

Everything here is *schedule*, computed a priori by the orchestrator
from the armed fault time: per-server simulations execute their plans
against their own clocks, so a fleet fanned over processes stays
byte-identical to a sequential run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from .server_sim import TenantAssignment

__all__ = ["MigrationPlan", "MigrationArrival",
           "PRECOPY_ROUNDS", "PRECOPY_ROUND_NS", "CUTOVER_NS",
           "CHUNK_COPY_NS", "COLD_CHUNK_COPY_NS"]

#: default pre-copy rounds (round 0 is the full copy)
PRECOPY_ROUNDS = 3
#: fixed length of one pre-copy round; dirty chunks of the previous
#: round are re-copied in the background while I/O keeps flowing
PRECOPY_ROUND_NS = 60 * MS
#: stop-and-copy window: the only time the tenant is dark under
#: migration — deliberately shorter than one availability window
CUTOVER_NS = 20 * MS
#: background copy cost per dirty chunk during a pre-copy round
CHUNK_COPY_NS = 2 * MS
#: cold-copy cost per chunk under drain (tenant stopped throughout);
#: strictly larger than CUTOVER_NS so even a one-chunk volume suffers
#: a longer outage drained than migrated
COLD_CHUNK_COPY_NS = 60 * MS


@dataclass(frozen=True)
class MigrationPlan:
    """One tenant's scheduled departure from a source server.

    ``mode`` is ``"migrate"`` (pre-copy + cutover), ``"drain"`` (stop
    then cold copy), or ``"prime"`` (a single pre-copy round ahead of a
    planned upgrade wave: the warm standby the control plane could cut
    over to, with no stop and no destination).
    """

    tenant: str
    mode: str
    dest: str
    start_ns: int
    rounds: int = PRECOPY_ROUNDS
    round_ns: int = PRECOPY_ROUND_NS
    cutover_ns: int = CUTOVER_NS
    chunk_copy_ns: int = CHUNK_COPY_NS
    cold_chunk_copy_ns: int = COLD_CHUNK_COPY_NS

    def handover_ns(self, chunks: int) -> int:
        """When the destination may start serving, per the schedule."""
        if self.mode == "drain":
            return self.start_ns + chunks * self.cold_chunk_copy_ns
        return self.start_ns + self.rounds * self.round_ns + self.cutover_ns


@dataclass(frozen=True)
class MigrationArrival:
    """One tenant's scheduled arrival on a destination server."""

    tenant: "TenantAssignment"
    serve_from_ns: int
    source: str
    mode: str
