"""Datacenter network substrate for the remote-storage extension.

Paper §VI-D: "we plan to add remote storage support to cope with more
storage scenarios."  This models the fabric that support rides on: a
full-duplex NIC-to-NIC path with finite bandwidth and propagation
delay, message-framed (NVMe-oF-style capsules).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import BandwidthLink, Event, Simulator

__all__ = ["NetworkProfile", "NetworkLink"]


@dataclass(frozen=True)
class NetworkProfile:
    """One network class."""

    name: str
    bytes_per_sec: float
    one_way_ns: int
    per_message_overhead_bytes: int = 96  # Ethernet+IP+TCP/RDMA headers


#: 25 GbE with RDMA-class latency — the paper's datacenter fabric tier
RDMA_25GBE = NetworkProfile(name="25gbe-rdma", bytes_per_sec=3.05e9, one_way_ns=2_500)
#: 100 GbE backbone
RDMA_100GBE = NetworkProfile(name="100gbe-rdma", bytes_per_sec=12.2e9, one_way_ns=2_000)


class NetworkLink:
    """A full-duplex point-to-point path between two nodes."""

    def __init__(self, sim: Simulator, profile: NetworkProfile = RDMA_25GBE,
                 name: str = "net"):
        self.sim = sim
        self.profile = profile
        self.name = name
        self._forward = BandwidthLink(
            sim, profile.bytes_per_sec, profile.one_way_ns, name=f"{name}.fwd"
        )
        self._reverse = BandwidthLink(
            sim, profile.bytes_per_sec, profile.one_way_ns, name=f"{name}.rev"
        )

    def send(self, nbytes: int, value=None) -> Event:
        """Initiator -> target message; fires on delivery."""
        return self._forward.transfer(nbytes + self.profile.per_message_overhead_bytes, value)

    def respond(self, nbytes: int, value=None) -> Event:
        """Target -> initiator message; fires on delivery."""
        return self._reverse.transfer(nbytes + self.profile.per_message_overhead_bytes, value)

    @property
    def bytes_moved(self) -> int:
        return self._forward.bytes_moved + self._reverse.bytes_moved
