"""Remote storage target: the far end of the §VI-D extension.

A storage server reached over the network, serving block commands from
its own flash (an NVMe-oF target in spirit): per-command target-side
CPU, then media service on a local drive model.
"""

from __future__ import annotations

from typing import Optional

from ..nvme.flash import FlashBackend, FlashProfile, P4510_PROFILE
from ..sim import Event, Simulator, StreamFactory

__all__ = ["RemoteCompletion", "RemoteStorageTarget"]

LBA_BYTES = 4096


class RemoteCompletion:
    """Result of one remote capsule: status + optional data."""
    __slots__ = ("ok", "data")

    def __init__(self, ok: bool, data: Optional[bytes] = None):
        self.ok = ok
        self.data = data


class RemoteStorageTarget:
    """One remote server exporting a block volume."""

    def __init__(
        self,
        sim: Simulator,
        streams: StreamFactory,
        name: str = "remote0",
        profile: FlashProfile = P4510_PROFILE,
        target_cpu_ns: int = 2_000,
    ):
        self.sim = sim
        self.name = name
        self.profile = profile
        self.target_cpu_ns = target_cpu_ns
        self.flash = FlashBackend(
            sim, profile, streams.stream(f"{name}.flash"), name=f"{name}.flash"
        )
        self._blocks: dict[int, bytes] = {}
        self.commands = 0

    @property
    def capacity_bytes(self) -> int:
        return self.profile.capacity_bytes

    @property
    def num_blocks(self) -> int:
        return self.capacity_bytes // LBA_BYTES

    def execute(self, op: str, lba: int, nblocks: int,
                payload: Optional[bytes] = None) -> Event:
        """Serve one capsule; the event fires with a RemoteCompletion."""
        done = self.sim.event(name=f"{self.name}.cmd")
        self.sim.process(self._serve(op, lba, nblocks, payload, done),
                         name=f"{self.name}.serve")
        return done

    def _serve(self, op, lba, nblocks, payload, done: Event):
        self.commands += 1
        if lba < 0 or lba + nblocks > self.num_blocks:
            done.succeed(RemoteCompletion(ok=False))
            return
        yield self.sim.timeout(self.target_cpu_ns)
        length = nblocks * LBA_BYTES
        if op == "read":
            yield from self.flash.read(length)
            data = None
            if any((lba + i) in self._blocks for i in range(nblocks)):
                data = b"".join(
                    self._blocks.get(lba + i, bytes(LBA_BYTES))
                    for i in range(nblocks)
                )
            done.succeed(RemoteCompletion(ok=True, data=data))
            return
        if op == "write":
            if payload is not None:
                for i in range(nblocks):
                    self._blocks[lba + i] = payload[
                        i * LBA_BYTES : (i + 1) * LBA_BYTES
                    ].ljust(LBA_BYTES, b"\0")
            yield from self.flash.write(length)
            done.succeed(RemoteCompletion(ok=True))
            return
        if op == "flush":
            yield from self.flash.flush()
            done.succeed(RemoteCompletion(ok=True))
            return
        done.succeed(RemoteCompletion(ok=False))
