"""Remote storage extension (paper §VI-D future work)."""

from .network import RDMA_25GBE, RDMA_100GBE, NetworkLink, NetworkProfile
from .target import RemoteCompletion, RemoteStorageTarget

__all__ = [
    "RDMA_25GBE",
    "RDMA_100GBE",
    "NetworkLink",
    "NetworkProfile",
    "RemoteCompletion",
    "RemoteStorageTarget",
]
