"""MSI-X interrupts.

A function's MSI-X table maps vector -> (message address, message data).
Raising a vector is a posted MemWrite of the message data to the message
address; on the host side an :class:`InterruptController` owns those
addresses and dispatches to registered software handlers (the driver's
IRQ routines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Event, SimulationError
from .fabric import Port

__all__ = ["MSIXEntry", "MSIXTable", "InterruptController"]


@dataclass
class MSIXEntry:
    """One MSI-X table entry: message address/data plus the mask bit."""
    address: int
    data: int
    masked: bool = False


class MSIXTable:
    """Per-function MSI-X vector table."""

    def __init__(self) -> None:
        self._entries: dict[int, MSIXEntry] = {}

    def configure(self, vector: int, address: int, data: int) -> None:
        self._entries[vector] = MSIXEntry(address, data)

    def entry(self, vector: int) -> MSIXEntry:
        try:
            return self._entries[vector]
        except KeyError:
            raise SimulationError(f"MSI-X vector {vector} not configured") from None

    def mask(self, vector: int, masked: bool = True) -> None:
        self.entry(vector).masked = masked

    def raise_vector(self, port: Port, vector: int) -> Optional[Event]:
        """Send the interrupt message; returns None if masked."""
        entry = self.entry(vector)
        if entry.masked:
            return None
        data = entry.data.to_bytes(4, "little")
        return port.mem_write(entry.address, 4, data)


class InterruptController:
    """Host-side MSI target: a window of message addresses.

    Allocate one message address per (device, vector) and register a
    handler; the controller is installed as an address window on the
    host fabric.
    """

    def __init__(self, base: int, size: int = 1 << 20, access_ns: int = 50):
        self.base = base
        self.size = size
        self._access_ns = access_ns
        self._next = base
        self._handlers: dict[int, Callable[[int], None]] = {}

    @property
    def access_ns(self) -> int:
        return self._access_ns

    def allocate(self, handler: Callable[[int], None]) -> tuple[int, int]:
        """Reserve a message address; returns (address, data)."""
        if self._next >= self.base + self.size:
            raise SimulationError("interrupt controller address space exhausted")
        addr = self._next
        self._next += 4
        self._handlers[addr] = handler
        return addr, addr & 0xFFFF

    # AddressHandler protocol -------------------------------------------------
    def mem_write(self, addr: int, length: int, data) -> None:
        handler = self._handlers.get(addr)
        if handler is None:
            raise SimulationError(f"spurious MSI at {addr:#x}")
        value = int.from_bytes(data, "little") if data else 0
        handler(value)

    def mem_read(self, addr: int, length: int):
        raise SimulationError("interrupt controller is write-only")
