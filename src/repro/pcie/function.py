"""PCIe functions (PFs and VFs) and multi-function devices.

A :class:`PCIeFunction` owns a config space, BAR windows, and an MSI-X
table.  An SR-IOV-capable PF can instantiate its VFs, which is exactly
how the BMS-Engine presents 4 PFs + 124 VFs to the host.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import SimulationError
from .config_space import ConfigSpace, SRIOVCapability
from .fabric import AddressHandler, Port
from .msix import MSIXTable

__all__ = ["PCIeFunction", "PCIeDevice"]


class PCIeFunction:
    """One PCIe function: config space + BARs + MSI-X."""

    def __init__(
        self,
        routing_id: int,
        config: ConfigSpace,
        name: str = "",
        is_vf: bool = False,
        parent_pf: Optional["PCIeFunction"] = None,
    ):
        if is_vf and parent_pf is None:
            raise SimulationError("a VF must have a parent PF")
        self.routing_id = routing_id
        self.config = config
        self.name = name or f"fn{routing_id:#x}"
        self.is_vf = is_vf
        self.parent_pf = parent_pf
        self.msix = MSIXTable()
        self.bar_base: dict[int, int] = {}

    def map_bar(self, port: Port, bar: int, base: int, handler: AddressHandler) -> None:
        """Assign a BAR address and expose it through the given port."""
        size = self.config.bar_sizes.get(bar)
        if size is None:
            raise SimulationError(f"{self.name}: BAR{bar} has no size configured")
        self.bar_base[bar] = base
        port.map_window(base, size, handler)

    def bar_addr(self, bar: int, offset: int = 0) -> int:
        base = self.bar_base.get(bar)
        if base is None:
            raise SimulationError(f"{self.name}: BAR{bar} not mapped")
        return base + offset

    def __repr__(self) -> str:  # pragma: no cover
        kind = "VF" if self.is_vf else "PF"
        return f"<{kind} {self.name} rid={self.routing_id:#x}>"


class PCIeDevice:
    """A physical device: one or more PFs, each possibly with VFs."""

    def __init__(self, name: str):
        self.name = name
        self.physical_functions: list[PCIeFunction] = []
        self.virtual_functions: list[PCIeFunction] = []

    def add_pf(
        self,
        routing_id: int,
        vendor_id: int,
        device_id: int,
        total_vfs: int = 0,
        bar_sizes: Optional[dict[int, int]] = None,
    ) -> PCIeFunction:
        sriov = SRIOVCapability(total_vfs=total_vfs) if total_vfs else None
        config = ConfigSpace(
            vendor_id=vendor_id,
            device_id=device_id,
            sriov=sriov,
            bar_sizes=dict(bar_sizes or {}),
        )
        pf = PCIeFunction(routing_id, config, name=f"{self.name}.pf{len(self.physical_functions)}")
        self.physical_functions.append(pf)
        return pf

    def enable_sriov(
        self,
        pf: PCIeFunction,
        num_vfs: int,
        vf_bar_sizes: Optional[dict[int, int]] = None,
        vf_configurer: Optional[Callable[[PCIeFunction, int], None]] = None,
    ) -> list[PCIeFunction]:
        """Enable ``num_vfs`` VFs under ``pf`` and return them."""
        cap = pf.config.sriov
        if cap is None:
            raise SimulationError(f"{pf.name} is not SR-IOV capable")
        cap.enable(num_vfs)
        vfs: list[PCIeFunction] = []
        for i in range(num_vfs):
            rid = cap.vf_routing_id(pf.routing_id, i)
            config = ConfigSpace(
                vendor_id=pf.config.vendor_id,
                device_id=pf.config.device_id,
                bar_sizes=dict(vf_bar_sizes or pf.config.bar_sizes),
            )
            vf = PCIeFunction(
                rid, config, name=f"{pf.name}.vf{i}", is_vf=True, parent_pf=pf
            )
            if vf_configurer is not None:
                vf_configurer(vf, i)
            vfs.append(vf)
        self.virtual_functions.extend(vfs)
        return vfs

    def all_functions(self) -> list[PCIeFunction]:
        return [*self.physical_functions, *self.virtual_functions]
