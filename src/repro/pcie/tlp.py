"""PCIe Transaction Layer Packet (TLP) model.

Only the fields the simulation routes on are modeled.  Payload bytes are
optional: performance runs elide them (``data=None``), integrity tests
carry real bytes end to end.

Wire-cost accounting follows PCIe Gen3 framing: each TLP pays a fixed
header/framing overhead and payloads are segmented at the max-payload
size, exactly the effects that make small-transfer efficiency < 100%.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "TLPType",
    "TLP",
    "MemWrite",
    "MemRead",
    "Completion",
    "VendorDefinedMessage",
    "TLP_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "wire_bytes",
]

# 12-16B header + 2B framing + 4B LCRC, rounded: per-TLP overhead.
TLP_HEADER_BYTES = 24
# Common max payload size negotiated on server platforms.
MAX_PAYLOAD_BYTES = 256


#: wire_bytes is pure and sees the same handful of payload sizes over
#: and over (ring entries, PRP pages, doorbells); memoize the default-
#: max-payload results
_WIRE_CACHE: dict = {}


def wire_bytes(payload_len: int, max_payload: int = MAX_PAYLOAD_BYTES) -> int:
    """Bytes occupied on the link by ``payload_len`` bytes of payload.

    A zero-length transaction (doorbell write header, read request)
    still costs one header.
    """
    if max_payload == MAX_PAYLOAD_BYTES:
        cached = _WIRE_CACHE.get(payload_len)
        if cached is not None:
            return cached
    if payload_len <= 0:
        result = TLP_HEADER_BYTES
    else:
        segments = math.ceil(payload_len / max_payload)
        result = payload_len + segments * TLP_HEADER_BYTES
    if max_payload == MAX_PAYLOAD_BYTES and len(_WIRE_CACHE) < 4096:
        _WIRE_CACHE[payload_len] = result
    return result


class TLPType(enum.Enum):
    """Transaction-layer packet categories the fabric routes."""
    MEM_WRITE = "MWr"
    MEM_READ = "MRd"
    COMPLETION = "CplD"
    MESSAGE = "Msg"


@dataclass
class TLP:
    """Base transaction-layer packet."""

    requester_id: int  # function id of the initiator
    tlp_type: TLPType = field(init=False, default=TLPType.MESSAGE)

    @property
    def payload_len(self) -> int:
        return 0

    @property
    def wire_len(self) -> int:
        return wire_bytes(self.payload_len)


@dataclass
class MemWrite(TLP):
    """Posted memory write (DMA write / MMIO write / doorbell)."""

    address: int = 0
    length: int = 0
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        self.tlp_type = TLPType.MEM_WRITE
        if self.data is not None and len(self.data) != self.length:
            raise ValueError(
                f"MemWrite data length {len(self.data)} != declared {self.length}"
            )

    @property
    def payload_len(self) -> int:
        return self.length


@dataclass
class MemRead(TLP):
    """Non-posted memory read request (completion carries the data)."""

    address: int = 0
    length: int = 0

    def __post_init__(self) -> None:
        self.tlp_type = TLPType.MEM_READ


@dataclass
class Completion(TLP):
    """Completion with data for an earlier MemRead."""

    length: int = 0
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        self.tlp_type = TLPType.COMPLETION

    @property
    def payload_len(self) -> int:
        return self.length


@dataclass
class VendorDefinedMessage(TLP):
    """PCIe VDM — the transport MCTP rides on (DMTF DSP0238).

    ``route_to_root`` distinguishes endpoint->root-complex messages
    (management responses) from routed-by-id messages (console ->
    endpoint commands).
    """

    payload: bytes = b""
    route_to_root: bool = False
    target_id: Optional[int] = None

    def __post_init__(self) -> None:
        self.tlp_type = TLPType.MESSAGE

    @property
    def payload_len(self) -> int:
        return len(self.payload)
