"""PCIe fabric: ports, links, and address routing.

The fabric is a root complex with point-to-point links to endpoints.
Every attached endpoint gets a :class:`Port` with a full-duplex pair of
:class:`~repro.sim.resources.BandwidthLink` (tx toward the root, rx
from the root).  Transactions are routed by memory address through
*windows*; anything not claimed by a window goes to the *root handler*
(host DRAM on the host fabric; the BMS-Engine's DMA router on the
back-end fabric).

Timing model per transaction:

* posted write:   tx-link serialization (+ per-hop latency) [+ target
  rx-link if the window is behind another port]
* read:           request header on tx, target access time, completion
  payload on the target->initiator path

CPU-initiated MMIO (doorbells, register reads) uses :meth:`cpu_write`
/ :meth:`cpu_read`, which traverse only the target port's rx/tx links.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol

from ..sim import BandwidthLink, Event, SimulationError, Simulator
from .tlp import VendorDefinedMessage, wire_bytes

__all__ = ["AddressHandler", "Port", "PCIeFabric", "PCIE_GEN3_BYTES_PER_SEC_PER_LANE"]

# PCIe Gen3: 8 GT/s, 128b/130b -> ~984.6 MB/s per lane per direction (raw;
# framing overhead is charged via tlp.wire_bytes).
PCIE_GEN3_BYTES_PER_SEC_PER_LANE = 984_600_000.0


class AddressHandler(Protocol):
    """Target of routed memory transactions (DRAM, BAR, chip memory)."""

    def mem_write(self, addr: int, length: int, data: Optional[bytes]) -> None:
        """Handle a memory write landing at ``addr``."""
        ...  # pragma: no cover - protocol

    def mem_read(self, addr: int, length: int) -> Optional[bytes]:
        """Handle a memory read; return bytes or None (elided data)."""
        ...  # pragma: no cover - protocol

    @property
    def access_ns(self) -> int:
        """Device-side access latency charged to reads."""
        ...  # pragma: no cover - protocol


class _Window:
    __slots__ = ("base", "end", "handler", "port")

    def __init__(self, base: int, size: int, handler: AddressHandler, port: Optional["Port"]):
        self.base = base
        self.end = base + size
        self.handler = handler
        self.port = port

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class Port:
    """An endpoint's attachment point: link pair + routing id space."""

    def __init__(
        self,
        fabric: "PCIeFabric",
        name: str,
        lanes: int,
        hop_latency_ns: int,
    ):
        self.fabric = fabric
        self.name = name
        self.lanes = lanes
        bw = PCIE_GEN3_BYTES_PER_SEC_PER_LANE * lanes
        sim = fabric.sim
        self.tx = BandwidthLink(sim, bw, propagation_ns=hop_latency_ns, name=f"{name}.tx")
        self.rx = BandwidthLink(sim, bw, propagation_ns=hop_latency_ns, name=f"{name}.rx")
        self._vdm_handler: Optional[Callable[[VendorDefinedMessage], None]] = None

    # -- address windows --------------------------------------------------
    def map_window(self, base: int, size: int, handler: AddressHandler) -> None:
        """Expose a BAR region of this endpoint into the fabric."""
        self.fabric._add_window(_Window(base, size, handler, self))

    # -- endpoint-initiated transactions ----------------------------------
    def mem_write(self, addr: int, length: int, data: Optional[bytes] = None) -> Event:
        """DMA write toward the fabric; event fires on delivery."""
        return self.fabric._routed_write(self, addr, length, data)

    def mem_read(self, addr: int, length: int) -> Event:
        """DMA read; event fires with the data when the completion lands."""
        return self.fabric._routed_read(self, addr, length)

    def send_vdm(self, message: VendorDefinedMessage) -> Event:
        """Send a vendor-defined message (MCTP transport)."""
        return self.fabric._route_vdm(self, message)

    def on_vdm(self, handler: Callable[[VendorDefinedMessage], None]) -> None:
        self._vdm_handler = handler

    # -- fault injection (pcie.link hook point) ----------------------------
    def link_down(self, duration_ns: int) -> None:
        """Link flap: both directions unavailable for ``duration_ns``;
        queued transfers resume when the link retrains."""
        self.tx.stall(duration_ns)
        self.rx.stall(duration_ns)

    def set_lanes(self, lanes: int) -> None:
        """Retrain at a different width (fault: width degrade)."""
        if lanes < 1:
            raise SimulationError(f"{self.name}: link width must be >= 1")
        self.lanes = lanes
        bw = PCIE_GEN3_BYTES_PER_SEC_PER_LANE * lanes
        self.tx.set_rate(bw)
        self.rx.set_rate(bw)


class PCIeFabric:
    """One PCIe domain: a root complex plus its endpoints."""

    def __init__(self, sim: Simulator, name: str = "pcie", hop_latency_ns: int = 150):
        self.sim = sim
        self.name = name
        self.hop_latency_ns = hop_latency_ns
        self._windows: list[_Window] = []
        self._ports: list[Port] = []
        self._root_handler: Optional[AddressHandler] = None
        self._root_vdm_handler: Optional[Callable[[VendorDefinedMessage], None]] = None
        # addr -> (handler, port) memo: ring slots, doorbells and DMA
        # buffers hit the same addresses constantly; invalidated when
        # the window list or root handler changes
        self._resolve_cache: dict[int, tuple[AddressHandler, Optional[Port]]] = {}
        # constant event labels (an f-string per transaction is pure
        # allocation churn on the hot path)
        self._wr_name = name + ":wr"
        self._rd_name = name + ":rd"
        self._cpuwr_name = name + ":cpuwr"
        self._cpurd_name = name + ":cpurd"

    # -- topology ----------------------------------------------------------
    def attach(self, name: str, lanes: int = 4) -> Port:
        port = Port(self, name, lanes, self.hop_latency_ns)
        self._ports.append(port)
        return port

    def port(self, name: str) -> Port:
        """Look up an attached endpoint's port by name."""
        for port in self._ports:
            if port.name == name:
                return port
        raise SimulationError(f"{self.name}: no port named {name!r}")

    def set_root_handler(self, handler: AddressHandler) -> None:
        """Claim all unclaimed addresses (host DRAM / engine chip space)."""
        self._root_handler = handler
        self._resolve_cache.clear()

    def set_root_vdm_handler(self, handler: Callable[[VendorDefinedMessage], None]) -> None:
        self._root_vdm_handler = handler

    def _add_window(self, window: _Window) -> None:
        for existing in self._windows:
            if window.base < existing.end and existing.base < window.end:
                raise SimulationError(
                    f"window [{window.base:#x},{window.end:#x}) overlaps "
                    f"[{existing.base:#x},{existing.end:#x})"
                )
        self._windows.append(window)
        self._resolve_cache.clear()

    def _resolve(self, addr: int) -> tuple[AddressHandler, Optional[Port]]:
        cache = self._resolve_cache
        hit = cache.get(addr)
        if hit is not None:
            return hit
        for window in self._windows:
            if window.contains(addr):
                result = (window.handler, window.port)
                break
        else:
            if self._root_handler is None:
                raise SimulationError(
                    f"{self.name}: no window claims address {addr:#x} and no root handler"
                )
            result = (self._root_handler, None)
        if len(cache) < 65536:
            cache[addr] = result
        return result

    # -- routed transactions -------------------------------------------------
    def _routed_write(self, src: Port, addr: int, length: int, data: Optional[bytes]) -> Event:
        handler, dst_port = self._resolve(addr)
        nbytes = wire_bytes(length)
        done = self.sim.pooled_event(self._wr_name)

        def deliver(_ev: Event) -> None:
            handler.mem_write(addr, length, data)
            done.succeed()

        leg1 = src.tx.transfer(nbytes)
        if dst_port is None or dst_port is src:
            leg1.callbacks.append(deliver)
        else:
            # peer-to-peer: second hop down the destination port
            def hop(_ev: Event) -> None:
                dst_port.rx.transfer(nbytes).callbacks.append(deliver)

            leg1.callbacks.append(hop)
        return done

    def _routed_read(self, src: Port, addr: int, length: int) -> Event:
        handler, dst_port = self._resolve(addr)
        done = self.sim.pooled_event(self._rd_name)
        req_bytes = wire_bytes(0)
        cpl_bytes = wire_bytes(length)

        def send_completion(value) -> None:
            def complete(_ev: Event) -> None:
                done.succeed(value)

            if dst_port is None or dst_port is src:
                src.rx.transfer(cpl_bytes).callbacks.append(complete)
            else:
                def hop(_e: Event) -> None:
                    src.rx.transfer(cpl_bytes).callbacks.append(complete)

                dst_port.tx.transfer(cpl_bytes).callbacks.append(hop)

        def after_access(_ev: Event) -> None:
            # async handlers (e.g. the BMS-Engine DMA router, which must
            # fetch from the *other* PCIe domain) return an event; plain
            # handlers return the data directly
            reader = getattr(handler, "mem_read_async", None)
            if reader is not None:
                reader(addr, length).callbacks.append(
                    lambda ev: send_completion(ev.value)
                )
            else:
                send_completion(handler.mem_read(addr, length))

        def after_request(_ev: Event) -> None:
            self.sim.timeout(handler.access_ns).callbacks.append(after_access)

        leg1 = src.tx.transfer(req_bytes)
        if dst_port is None or dst_port is src:
            leg1.callbacks.append(after_request)
        else:
            def hop_req(_e: Event) -> None:
                dst_port.rx.transfer(req_bytes).callbacks.append(after_request)

            leg1.callbacks.append(hop_req)
        return done

    # -- CPU (root-initiated) transactions ------------------------------------
    def cpu_write(self, addr: int, length: int, data: Optional[bytes] = None) -> Event:
        """MMIO write from the host CPU (e.g. a doorbell)."""
        handler, dst_port = self._resolve(addr)
        nbytes = wire_bytes(length)
        done = self.sim.pooled_event(self._cpuwr_name)

        def deliver(_ev: Event) -> None:
            handler.mem_write(addr, length, data)
            done.succeed()

        if dst_port is None:
            # root-local (DRAM): no link traversal; small access cost
            self.sim.timeout(handler.access_ns).callbacks.append(deliver)
        else:
            dst_port.rx.transfer(nbytes).callbacks.append(deliver)
        return done

    def cpu_read(self, addr: int, length: int) -> Event:
        """MMIO/DRAM read from the host CPU."""
        handler, dst_port = self._resolve(addr)
        done = self.sim.pooled_event(self._cpurd_name)

        def complete(_ev: Event) -> None:
            done.succeed(handler.mem_read(addr, length))

        if dst_port is None:
            self.sim.timeout(handler.access_ns).callbacks.append(complete)
        else:
            def after_req(_ev: Event) -> None:
                self.sim.timeout(handler.access_ns).callbacks.append(
                    lambda _e: dst_port.tx.transfer(wire_bytes(length)).callbacks.append(complete)
                )

            dst_port.rx.transfer(wire_bytes(0)).callbacks.append(after_req)
        return done

    # -- vendor-defined messages (MCTP transport) ------------------------------
    def _route_vdm(self, src: Port, message: VendorDefinedMessage) -> Event:
        done = self.sim.event(name=f"{self.name}:vdm")
        nbytes = wire_bytes(message.payload_len)

        if message.route_to_root or message.target_id is None:
            def deliver(_ev: Event) -> None:
                if self._root_vdm_handler is None:
                    raise SimulationError(f"{self.name}: no root VDM handler")
                self._root_vdm_handler(message)
                done.succeed()

            src.tx.transfer(nbytes).callbacks.append(deliver)
            return done

        target = self._port_by_name_or_id(message.target_id)

        def deliver_ep(_ev: Event) -> None:
            if target._vdm_handler is None:
                raise SimulationError(f"{target.name}: no VDM handler registered")
            target._vdm_handler(message)
            done.succeed()

        def hop(_ev: Event) -> None:
            target.rx.transfer(nbytes).callbacks.append(deliver_ep)

        if src is target:
            src.tx.transfer(nbytes).callbacks.append(deliver_ep)
        else:
            src.tx.transfer(nbytes).callbacks.append(hop)
        return done

    def root_send_vdm(self, message: VendorDefinedMessage) -> Event:
        """VDM injected at the root (e.g. BMC/remote console side)."""
        done = self.sim.event(name=f"{self.name}:vdm-root")
        if message.target_id is None:
            raise SimulationError("root VDM needs a target_id")
        target = self._port_by_name_or_id(message.target_id)

        def deliver(_ev: Event) -> None:
            if target._vdm_handler is None:
                raise SimulationError(f"{target.name}: no VDM handler registered")
            target._vdm_handler(message)
            done.succeed()

        target.rx.transfer(wire_bytes(message.payload_len)).callbacks.append(deliver)
        return done

    def _port_by_name_or_id(self, target: Any) -> Port:
        for idx, port in enumerate(self._ports):
            if idx == target or port.name == target:
                return port
        raise SimulationError(f"{self.name}: unknown VDM target {target!r}")
