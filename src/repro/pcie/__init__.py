"""PCIe substrate: TLPs, links, config space, SR-IOV functions, MSI-X.

Two instances of :class:`PCIeFabric` model BM-Store's two separate PCIe
domains: the host domain (host root complex <-> BMS-Engine front end)
and the back-end domain (BMS-Engine root <-> SSDs).
"""

from .config_space import ConfigSpace, SRIOVCapability
from .fabric import PCIE_GEN3_BYTES_PER_SEC_PER_LANE, AddressHandler, PCIeFabric, Port
from .function import PCIeDevice, PCIeFunction
from .msix import InterruptController, MSIXEntry, MSIXTable
from .tlp import (
    MAX_PAYLOAD_BYTES,
    TLP,
    TLP_HEADER_BYTES,
    Completion,
    MemRead,
    MemWrite,
    TLPType,
    VendorDefinedMessage,
    wire_bytes,
)

__all__ = [
    "ConfigSpace",
    "SRIOVCapability",
    "PCIE_GEN3_BYTES_PER_SEC_PER_LANE",
    "AddressHandler",
    "PCIeFabric",
    "Port",
    "PCIeDevice",
    "PCIeFunction",
    "InterruptController",
    "MSIXEntry",
    "MSIXTable",
    "MAX_PAYLOAD_BYTES",
    "TLP",
    "TLP_HEADER_BYTES",
    "Completion",
    "MemRead",
    "MemWrite",
    "TLPType",
    "VendorDefinedMessage",
    "wire_bytes",
]
