"""PCIe configuration space — the subset management and SR-IOV need.

Real config space is a register file; here it is a typed object with
the same semantics: command-register enable bits gate DMA, and the
SR-IOV extended capability controls VF enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SRIOVCapability", "ConfigSpace"]


@dataclass
class SRIOVCapability:
    """SR-IOV extended capability (PCIe spec §9).

    ``total_vfs`` is the hardware maximum; ``num_vfs`` is what software
    enabled.  VFs get routing ids ``first_vf_offset + i * vf_stride``
    relative to the PF.
    """

    total_vfs: int
    first_vf_offset: int = 1
    vf_stride: int = 1
    num_vfs: int = 0
    vf_enable: bool = False

    def enable(self, num_vfs: int) -> None:
        if not 0 < num_vfs <= self.total_vfs:
            raise ValueError(
                f"num_vfs={num_vfs} out of range 1..{self.total_vfs}"
            )
        self.num_vfs = num_vfs
        self.vf_enable = True

    def disable(self) -> None:
        self.vf_enable = False
        self.num_vfs = 0

    def vf_routing_id(self, pf_routing_id: int, index: int) -> int:
        if not 0 <= index < self.total_vfs:
            raise ValueError(f"VF index {index} out of range")
        return pf_routing_id + self.first_vf_offset + index * self.vf_stride


@dataclass
class ConfigSpace:
    """Type-0 config header + capability pointers."""

    vendor_id: int
    device_id: int
    class_code: int = 0x010802  # NVMe: mass storage / NVM / NVMe I/O
    revision: int = 0
    # command register bits
    memory_space_enable: bool = False
    bus_master_enable: bool = False
    sriov: Optional[SRIOVCapability] = None
    # BAR sizes in bytes, index -> size (assigned addresses live on the function)
    bar_sizes: dict[int, int] = field(default_factory=dict)

    def enable(self) -> None:
        """Set MSE+BME, as an OS driver would at probe time."""
        self.memory_space_enable = True
        self.bus_master_enable = True

    @property
    def can_dma(self) -> bool:
        return self.bus_master_enable
