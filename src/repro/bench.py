"""Kernel benchmark harness: ``python -m repro bench``.

Measures what the simulation kernel actually delivers — events per
wall-clock second and wall time per quick fio case — and writes a
``BENCH_<stamp>.json`` snapshot.  A committed snapshot becomes the
regression gate: ``--check baseline.json`` fails the run when any
case's events/sec drops more than the tolerance below its baseline, so
kernel slowdowns surface in CI instead of in somebody's overnight
sweep.

Runs are sequential on purpose (parallel workers contend for cores and
poison the wall-clock numbers) and default to the "counters"
observability mode so the gate tracks kernel throughput, not span
bookkeeping.  ``REPRO_TIME_SCALE`` shrinks the measured windows for
smoke use; the scale is recorded in the snapshot, and ``--check``
refuses to compare snapshots taken at different scales.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any, Optional, Sequence

from .experiments.common import time_scale
from .runner import RunSpec, run_one

__all__ = ["BENCH_SCHEMES", "QUICK_BENCH_CASES", "run_bench", "compare",
           "compare_meta", "bench_filename"]

#: schemes the gate tracks: the native fast path, the full engine, and
#: the engine's I/O-queue passthrough mode
BENCH_SCHEMES = ("native", "bmstore", "passthrough")
#: --quick subset: one shallow and one deep random case per scheme
QUICK_BENCH_CASES = ("rand-r-1", "rand-r-128")
#: default regression tolerance on events/sec, as a fraction
DEFAULT_TOLERANCE = 0.25


def bench_filename(stamp: Optional[str] = None) -> str:
    """``BENCH_<UTC stamp>.json`` (stamp format 20260806T174500Z)."""
    if stamp is None:
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    return f"BENCH_{stamp}.json"


def _git_sha() -> Optional[str]:
    """The commit being measured: CI's GITHUB_SHA, else git, else None."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def run_bench(
    schemes: Sequence[str] = BENCH_SCHEMES,
    cases: Optional[Sequence[str]] = None,
    *,
    seed: int = 7,
    obs_mode: str = "counters",
    policy: Optional[str] = None,
    repeats: int = 1,
) -> dict[str, Any]:
    """Run the benchmark grid sequentially; returns the snapshot dict.

    ``repeats`` > 1 runs each cell that many times and keeps the best
    wall clock: the minimum is the least contaminated by scheduler
    noise and collector pauses, which is what a regression gate should
    track (the simulation itself is deterministic, so every repeat
    produces the identical payload).
    """
    if cases is None:
        cases = QUICK_BENCH_CASES
    repeats = max(1, int(repeats))
    runs = []
    for case in cases:
        for scheme in schemes:
            spec = RunSpec(scheme=scheme, case=case, seed=seed,
                           obs_mode=obs_mode, policy=policy)
            wall_s = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                payload = run_one(spec)
                rep_wall = time.perf_counter() - t0
                if wall_s is None or rep_wall < wall_s:
                    wall_s = rep_wall
            events = payload["sim_events"]
            runs.append({
                "scheme": scheme,
                "case": case,
                "seed": seed,
                "wall_s": round(wall_s, 4),
                "sim_events": events,
                "events_per_sec": round(events / wall_s) if wall_s > 0 else 0,
                "ios": payload["ios"],
                "iops": round(payload["iops"], 1),
            })
    total_events = sum(r["sim_events"] for r in runs)
    total_wall = sum(r["wall_s"] for r in runs)
    return {
        "kind": "repro-bench",
        "obs_mode": obs_mode,
        "time_scale": time_scale(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "git_sha": _git_sha(),
        "runs": runs,
        "totals": {
            "wall_s": round(total_wall, 4),
            "sim_events": total_events,
            "events_per_sec": (
                round(total_events / total_wall) if total_wall > 0 else 0
            ),
        },
    }


def compare_meta(current: dict[str, Any], baseline: dict[str, Any]) -> list[str]:
    """Environment-mismatch *warnings* (never failures).

    A different interpreter or CPU architecture shifts events/sec
    wholesale, so the tolerance-based gate is advisory across such a
    boundary — but the ``sim_events`` drift check in :func:`compare`
    stays a hard error regardless: event counts are machine-independent.
    """
    warnings: list[str] = []
    for key in ("python", "machine"):
        cur, base = current.get(key), baseline.get(key)
        if cur != base:
            warnings.append(
                f"{key} mismatch: current {cur!r} vs baseline {base!r}; "
                "events/sec comparison is advisory (consider refreshing "
                "the baseline on this environment)"
            )
    return warnings


def compare(current: dict[str, Any], baseline: dict[str, Any],
            tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Regression check; returns human-readable failures (empty = pass).

    A run regresses when its events/sec falls more than ``tolerance``
    below the baseline's for the same (scheme, case).  Cases present
    only on one side are reported too — a silently dropped case would
    otherwise make the gate vacuous.
    """
    failures: list[str] = []
    if current.get("time_scale") != baseline.get("time_scale"):
        failures.append(
            f"time_scale mismatch: current {current.get('time_scale')} vs "
            f"baseline {baseline.get('time_scale')}; re-run with the "
            "baseline's REPRO_TIME_SCALE"
        )
        return failures
    base_by_cell = {(r["scheme"], r["case"]): r for r in baseline["runs"]}
    seen = set()
    for run in current["runs"]:
        cell = (run["scheme"], run["case"])
        seen.add(cell)
        base = base_by_cell.get(cell)
        if base is None:
            failures.append(f"{cell[0]}/{cell[1]}: no baseline entry")
            continue
        if run["sim_events"] != base["sim_events"]:
            failures.append(
                f"{cell[0]}/{cell[1]}: event count changed "
                f"{base['sim_events']} -> {run['sim_events']} "
                "(simulation behaviour drifted; refresh the baseline "
                "deliberately if intended)"
            )
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if run["events_per_sec"] < floor:
            failures.append(
                f"{cell[0]}/{cell[1]}: {run['events_per_sec']:,} events/s "
                f"< {floor:,.0f} (baseline {base['events_per_sec']:,} "
                f"- {tolerance:.0%})"
            )
    for cell in base_by_cell:
        if cell not in seen:
            failures.append(f"{cell[0]}/{cell[1]}: in baseline but not run")
    return failures


def render(snapshot: dict[str, Any]) -> str:
    """One-line-per-run table for terminal output."""
    lines = [
        f"kernel bench (obs={snapshot['obs_mode']}, "
        f"time_scale={snapshot['time_scale']})"
    ]
    lines.append(
        f"  {'scheme':<12} {'case':<12} {'wall_s':>8} {'events':>10} "
        f"{'events/s':>10} {'KIOPS':>8}"
    )
    for r in snapshot["runs"]:
        lines.append(
            f"  {r['scheme']:<12} {r['case']:<12} {r['wall_s']:>8.2f} "
            f"{r['sim_events']:>10,} {r['events_per_sec']:>10,} "
            f"{r['iops'] / 1e3:>8.1f}"
        )
    t = snapshot["totals"]
    lines.append(
        f"  {'total':<25} {t['wall_s']:>8.2f} {t['sim_events']:>10,} "
        f"{t['events_per_sec']:>10,}"
    )
    return "\n".join(lines)


def load(path: str) -> dict[str, Any]:
    with open(path) as fh:
        snapshot = json.load(fh)
    if snapshot.get("kind") != "repro-bench":
        raise ValueError(f"{path} is not a repro bench snapshot")
    return snapshot
