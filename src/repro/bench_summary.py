"""Markdown perf-trend table: ``python -m repro.bench_summary``.

CI's bench job appends this module's output to ``$GITHUB_STEP_SUMMARY``
so every run shows its per-(scheme, case) events/sec against the
committed baseline — drift that stays inside the 25% regression cliff
is still visible as a trend instead of vanishing into a green check.
"""

from __future__ import annotations

import sys
from typing import Any

from . import bench

__all__ = ["trend_table"]


def _sha_label(snapshot: dict[str, Any]) -> str:
    sha = snapshot.get("git_sha")
    return sha[:12] if sha else "?"


def trend_table(current: dict[str, Any], baseline: dict[str, Any]) -> str:
    """GitHub-flavoured markdown comparing two bench snapshots."""
    lines = [
        f"### Kernel bench trend (`{_sha_label(current)}` vs baseline "
        f"`{_sha_label(baseline)}`)",
        "",
        f"obs={current.get('obs_mode')}, time_scale={current.get('time_scale')}, "
        f"repeats={current.get('repeats', 1)}",
        "",
        "| scheme | case | baseline ev/s | current ev/s | delta |",
        "|---|---|---:|---:|---:|",
    ]
    base_by_cell = {(r["scheme"], r["case"]): r for r in baseline["runs"]}
    for run in current["runs"]:
        base = base_by_cell.get((run["scheme"], run["case"]))
        if base is None or not base.get("events_per_sec"):
            base_col, delta = "n/a", "n/a"
        else:
            base_col = f"{base['events_per_sec']:,}"
            delta = f"{run['events_per_sec'] / base['events_per_sec'] - 1:+.1%}"
        lines.append(
            f"| {run['scheme']} | {run['case']} | {base_col} | "
            f"{run['events_per_sec']:,} | {delta} |"
        )
    cur_total = current.get("totals", {}).get("events_per_sec")
    base_total = baseline.get("totals", {}).get("events_per_sec")
    if cur_total and base_total:
        lines.append(
            f"| **total** | | {base_total:,} | {cur_total:,} | "
            f"{cur_total / base_total - 1:+.1%} |"
        )
    for warning in bench.compare_meta(current, baseline):
        lines.append("")
        lines.append(f"> :warning: {warning}")
    return "\n".join(lines) + "\n"


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: python -m repro.bench_summary CURRENT.json BASELINE.json",
              file=sys.stderr)
        return 2
    sys.stdout.write(trend_table(bench.load(argv[0]), bench.load(argv[1])))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
