"""Deterministic fault plans: *what* breaks, *where*, and *when*.

A :class:`FaultPlan` is pure data — a composable schedule of
:class:`FaultSpec` entries plus an optional :class:`DriverFaultPolicy`
describing how the host driver should defend itself.  Plans carry no
randomness of their own: every fault fires at an explicit simulated
time (or on an explicit command-count trigger), so the same seed plus
the same plan always produces the identical event sequence.

The plan is armed into a simulated world by a
:class:`~repro.faults.injector.FaultInjector`; an un-armed world (no
injector, ``faults=None`` everywhere) executes exactly the pre-fault
code path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterator, Optional

from ..nvme.spec import StatusCode
from ..sim.units import MS, ms

__all__ = ["FAULT_KINDS", "FaultSpec", "DriverFaultPolicy", "FaultPlan"]

FAULT_KINDS = (
    "media_error",      # NVMe media/data-transfer error on matching I/O
    "die_stall",        # extra per-command flash latency (busy die / GC)
    "cmd_drop",         # command swallowed: no CQE is ever posted
    "link_flap",        # PCIe link down for a window (both directions)
    "width_degrade",    # PCIe link re-trains at fewer lanes
    "firmware_stall",   # firmware activation takes longer than advertised
    "engine_stall",     # BMS-Engine pipeline hiccup per dispatched command
    "hot_remove",       # surprise removal of a backend SSD (and re-seat)
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  Field meaning varies slightly per kind."""

    kind: str
    target: str = ""          # SSD/port name; backend slot id for hot_remove; "" = any
    at_ns: int = 0            # window start (simulated time)
    duration_ns: int = 0      # window length; 0 = open-ended (or re-seat delay)
    count: int = 0            # max firings inside the window; 0 = unlimited
    op: str = "any"           # media_error: "read" | "write" | "any"
    lba: int = -1             # media_error: bad range start; -1 = any LBA
    nblocks: int = 1          # media_error: bad range length
    status: int = int(StatusCode.DATA_TRANSFER_ERROR)
    stall_ns: int = 0         # die_stall / engine_stall per command; firmware extra
    lanes: int = 0            # width_degrade: degraded link width

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.at_ns < 0 or self.duration_ns < 0:
            raise ValueError(f"{self.kind}: fault times must be non-negative")


@dataclass(frozen=True)
class DriverFaultPolicy:
    """Production-shaped error handling knobs for the host NVMe driver.

    When set, every I/O is supervised: if no completion arrives within
    ``timeout_ns`` the driver sends an NVMe Abort and retries with
    bounded exponential backoff (``backoff_base_ns * 2**attempt``,
    capped at ``backoff_cap_ns``); completions whose status is in
    ``retryable`` are retried the same way.  ``max_retries`` bounds the
    extra attempts before the failure surfaces to the caller.
    """

    timeout_ns: int = 50 * MS
    max_retries: int = 5
    backoff_base_ns: int = ms(5)
    backoff_cap_ns: int = ms(80)
    retryable: tuple[int, ...] = (
        int(StatusCode.NAMESPACE_NOT_READY),
        int(StatusCode.ABORTED_BY_REQUEST),
    )


class FaultPlan:
    """A composable schedule of faults.  Builders chain:

    >>> plan = (FaultPlan()
    ...         .media_error(ssd="bssd0", at_ns=ms(10), count=2, op="read")
    ...         .link_flap("bssd0", at_ns=ms(20), duration_ns=ms(5))
    ...         .with_driver_policy(timeout_ns=ms(10), max_retries=4))
    """

    def __init__(self, driver_policy: Optional[DriverFaultPolicy] = None):
        self.specs: list[FaultSpec] = []
        self.driver_policy = driver_policy

    # ------------------------------------------------------------- plumbing
    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def kinds(self) -> set[str]:
        return {s.kind for s in self.specs}

    def describe(self) -> list[dict]:
        """Stable, JSON-able view of the schedule (docs / CLI)."""
        return [asdict(s) for s in sorted(self.specs, key=lambda s: (s.at_ns, s.kind))]

    # ------------------------------------------------------------- builders
    def media_error(
        self,
        ssd: str = "",
        at_ns: int = 0,
        duration_ns: int = 0,
        count: int = 0,
        op: str = "read",
        lba: int = -1,
        nblocks: int = 1,
        status: int = int(StatusCode.DATA_TRANSFER_ERROR),
    ) -> "FaultPlan":
        return self.add(FaultSpec(
            "media_error", target=ssd, at_ns=at_ns, duration_ns=duration_ns,
            count=count, op=op, lba=lba, nblocks=nblocks, status=status,
        ))

    def die_stall(
        self, ssd: str = "", at_ns: int = 0, duration_ns: int = 0,
        stall_ns: int = ms(2),
    ) -> "FaultPlan":
        return self.add(FaultSpec(
            "die_stall", target=ssd, at_ns=at_ns, duration_ns=duration_ns,
            stall_ns=stall_ns,
        ))

    def cmd_drop(
        self, ssd: str = "", at_ns: int = 0, duration_ns: int = 0, count: int = 1,
    ) -> "FaultPlan":
        return self.add(FaultSpec(
            "cmd_drop", target=ssd, at_ns=at_ns, duration_ns=duration_ns,
            count=count,
        ))

    def link_flap(
        self, port: str, at_ns: int = 0, duration_ns: int = ms(1),
    ) -> "FaultPlan":
        return self.add(FaultSpec(
            "link_flap", target=port, at_ns=at_ns, duration_ns=duration_ns,
        ))

    def width_degrade(
        self, port: str, at_ns: int = 0, lanes: int = 1, duration_ns: int = 0,
    ) -> "FaultPlan":
        return self.add(FaultSpec(
            "width_degrade", target=port, at_ns=at_ns, lanes=lanes,
            duration_ns=duration_ns,
        ))

    def firmware_stall(
        self, ssd: str = "", extra_ns: int = ms(500), count: int = 1,
    ) -> "FaultPlan":
        return self.add(FaultSpec(
            "firmware_stall", target=ssd, stall_ns=extra_ns, count=count,
        ))

    def engine_stall(
        self, at_ns: int = 0, duration_ns: int = ms(1), stall_ns: int = 10_000,
    ) -> "FaultPlan":
        return self.add(FaultSpec(
            "engine_stall", at_ns=at_ns, duration_ns=duration_ns, stall_ns=stall_ns,
        ))

    def hot_remove(
        self, slot: int, at_ns: int = 0, reattach_after_ns: int = 0,
    ) -> "FaultPlan":
        """Surprise-remove backend ``slot``; if ``reattach_after_ns`` is
        nonzero, the drive is re-seated that long after removal and the
        BMS-Controller watchdog re-attaches the namespace."""
        return self.add(FaultSpec(
            "hot_remove", target=str(slot), at_ns=at_ns,
            duration_ns=reattach_after_ns,
        ))

    def with_driver_policy(self, **kwargs) -> "FaultPlan":
        self.driver_policy = DriverFaultPolicy(**kwargs)
        return self
