"""Canned fault plans for the CLI (``python -m repro fio --faults X``).

Timings are sized for the quick fio cases (tens of milliseconds of
simulated time); port/slot targets assume the ``bmstore`` scheme,
whose single-SSD backend drive and PCIe port are both named
``bssd0``.  Every preset that can leave a command without a CQE also
carries a driver policy, otherwise closed-loop workers would wait
forever.
"""

from __future__ import annotations

from ..sim.units import MS
from .plan import FaultPlan

__all__ = ["PRESETS", "PRESET_DESCRIPTIONS", "get_preset", "list_presets"]


def _media_burst() -> FaultPlan:
    return (FaultPlan()
            .media_error(at_ns=8 * MS, duration_ns=10 * MS, op="any")
            .with_driver_policy(timeout_ns=5 * MS, max_retries=3,
                                backoff_base_ns=200_000, backoff_cap_ns=MS))


def _die_stall() -> FaultPlan:
    return FaultPlan().die_stall(at_ns=8 * MS, duration_ns=6 * MS, stall_ns=500_000)


def _cmd_drop() -> FaultPlan:
    return (FaultPlan()
            .cmd_drop(at_ns=10 * MS, count=4)
            .with_driver_policy(timeout_ns=2 * MS, max_retries=4,
                                backoff_base_ns=100_000, backoff_cap_ns=500_000))


def _link_flap() -> FaultPlan:
    return (FaultPlan()
            .link_flap("bssd0", at_ns=10 * MS, duration_ns=2 * MS)
            .with_driver_policy(timeout_ns=5 * MS, max_retries=4,
                                backoff_base_ns=500_000, backoff_cap_ns=2 * MS))


def _width_degrade() -> FaultPlan:
    return FaultPlan().width_degrade("bssd0", at_ns=8 * MS, lanes=1,
                                     duration_ns=10 * MS)


def _hot_remove() -> FaultPlan:
    return (FaultPlan()
            .hot_remove(0, at_ns=10 * MS, reattach_after_ns=5 * MS)
            .with_driver_policy(timeout_ns=10 * MS, max_retries=8,
                                backoff_base_ns=500_000, backoff_cap_ns=2 * MS))


def _pt_hot_remove() -> FaultPlan:
    # Passthrough has no engine interposition: a yanked drive means
    # every in-flight command silently waits out the full driver
    # timeout before the abort/retry path kicks in, so this preset uses
    # a short timeout to keep the quick cases' recovery window visible.
    return (FaultPlan()
            .hot_remove(0, at_ns=10 * MS, reattach_after_ns=4 * MS)
            .with_driver_policy(timeout_ns=4 * MS, max_retries=10,
                                backoff_base_ns=250_000, backoff_cap_ns=MS))


def _pt_link_flap() -> FaultPlan:
    return (FaultPlan()
            .link_flap("bssd0", at_ns=10 * MS, duration_ns=2 * MS)
            .with_driver_policy(timeout_ns=4 * MS, max_retries=6,
                                backoff_base_ns=250_000, backoff_cap_ns=MS))


PRESETS = {
    "media-burst": _media_burst,
    "die-stall": _die_stall,
    "cmd-drop": _cmd_drop,
    "link-flap": _link_flap,
    "width-degrade": _width_degrade,
    "hot-remove": _hot_remove,
    "pt-hot-remove": _pt_hot_remove,
    "pt-link-flap": _pt_link_flap,
}

#: one-liners for ``python -m repro faults --list`` (and ``--faults list``)
PRESET_DESCRIPTIONS = {
    "media-burst": "10 ms of NVMe media errors on every I/O; driver retries",
    "die-stall": "6 ms window adding 0.5 ms flash latency per command (busy die/GC)",
    "cmd-drop": "4 commands swallowed with no CQE; driver timeout -> abort -> retry",
    "link-flap": "PCIe link to the backend drive down for 2 ms",
    "width-degrade": "backend link re-trains at x1 for 10 ms (bandwidth loss)",
    "hot-remove": "surprise removal of backend slot 0, re-seated 5 ms later",
    "pt-hot-remove": "hot-remove sized for passthrough: short driver timeout "
                     "is the only safety net",
    "pt-link-flap": "link flap sized for passthrough (no engine-side retry)",
}


def get_preset(name: str) -> FaultPlan:
    try:
        return PRESETS[name]()
    except KeyError:
        raise ValueError(
            f"unknown fault preset {name!r}; one of {sorted(PRESETS)}"
        ) from None


def list_presets() -> list[tuple[str, str]]:
    """(name, one-line description) per canned plan, in listing order."""
    return [(name, PRESET_DESCRIPTIONS.get(name, "")) for name in PRESETS]
