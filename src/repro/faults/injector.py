"""Arms a :class:`FaultPlan` into a simulated world.

The injector is the only live object in the fault layer.  Components
expose **named hook points** that stay dormant (``self.faults is
None`` — one attribute test, no allocation, no events) until an
injector binds itself:

========================  ==========================================
hook point                faults delivered
========================  ==========================================
``ssd.media``             media_error, die_stall   (``NVMeSSD._io``)
``ssd.fetch``             cmd_drop                 (``NVMeSSD._execute``)
``ssd.firmware``          firmware_stall           (``NVMeSSD._activate_firmware``)
``engine.dispatch``       engine_stall             (``TargetController.dispatch``)
``engine.backend``        hot_remove               (``BMSEngine.surprise_remove``)
``pcie.link``             link_flap, width_degrade (``pcie.fabric.Port``)
========================  ==========================================

Timeline faults (link flaps, width degrades, hot removes) run as sim
processes started by :meth:`start`; per-command faults are pulled by
the datapath at the hook points.  Every injected fault increments the
``faults_injected{kind,target}`` observability counter, is noted on
the in-flight :class:`~repro.obs.spans.IOSpan` when one is present,
and is logged to the bound BMS-Controller's fault log (visible out of
band via NVMe-MI ``GET_FAULT_LOG``).
"""

from __future__ import annotations

from typing import Optional

from ..nvme.spec import IOOpcode
from ..sim import SimulationError, Simulator
from .plan import FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class _Armed:
    """Per-spec mutable state: remaining firing budget."""

    __slots__ = ("spec", "remaining")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.remaining = spec.count if spec.count > 0 else -1  # -1 = unlimited

    def take(self) -> bool:
        if self.remaining == 0:
            return False
        if self.remaining > 0:
            self.remaining -= 1
        return True


def _in_window(spec: FaultSpec, now: int) -> bool:
    if now < spec.at_ns:
        return False
    return not spec.duration_ns or now < spec.at_ns + spec.duration_ns


def _matches(spec: FaultSpec, name: str) -> bool:
    return not spec.target or spec.target == name


class FaultInjector:
    def __init__(self, sim: Simulator, plan: FaultPlan, obs=None):
        self.sim = sim
        self.plan = plan
        self.obs = obs
        by_kind = lambda k: [s for s in plan.specs if s.kind == k]
        self._media = [_Armed(s) for s in by_kind("media_error")]
        self._die_stalls = by_kind("die_stall")
        self._drops = [_Armed(s) for s in by_kind("cmd_drop")]
        self._fw = [_Armed(s) for s in by_kind("firmware_stall")]
        self._engine_stalls = by_kind("engine_stall")
        self._timeline = [
            s for s in plan.specs
            if s.kind in ("link_flap", "width_degrade", "hot_remove")
        ]
        self.engine = None
        self.controller = None
        self._fabrics: list = []
        self.injected = 0
        self._started = False

    # -------------------------------------------------------------- binding
    def bind_ssd(self, ssd) -> None:
        ssd.faults = self

    def bind_engine(self, engine, controller=None) -> None:
        engine.faults = self
        self.engine = engine
        self.controller = controller

    def bind_fabric(self, fabric) -> None:
        self._fabrics.append(fabric)

    def start(self) -> None:
        """Launch the timeline processes (idempotent)."""
        if self._started:
            return
        self._started = True
        for spec in self._timeline:
            self.sim.process(self._timeline_proc(spec), name=f"fault.{spec.kind}")

    # ------------------------------------------------------------ recording
    def _record(self, kind: str, target: str, span=None) -> None:
        self.injected += 1
        if self.obs is not None:
            self.obs.counter("faults_injected", kind=kind, target=target).inc()
        if span is not None:
            span.note_fault(kind)
        if self.controller is not None:
            self.controller.note_fault(kind, target)

    # --------------------------------------------------- hook: ssd.media
    def media_stall_ns(self, ssd_name: str, span=None) -> int:
        """Extra flash latency to charge this command (die_stall)."""
        now = self.sim.now
        total = 0
        for spec in self._die_stalls:
            if _matches(spec, ssd_name) and _in_window(spec, now):
                total += spec.stall_ns
        if total:
            self._record("die_stall", ssd_name, span)
        return total

    def media_error(
        self, ssd_name: str, opcode: int, slba: int, nblocks: int, span=None,
    ) -> Optional[int]:
        """NVMe status to fail this command with, or None."""
        now = self.sim.now
        for armed in self._media:
            spec = armed.spec
            if armed.remaining == 0 or not _matches(spec, ssd_name):
                continue
            if not _in_window(spec, now):
                continue
            if spec.op == "read" and opcode != int(IOOpcode.READ):
                continue
            if spec.op == "write" and opcode != int(IOOpcode.WRITE):
                continue
            if spec.lba >= 0 and not (
                spec.lba < slba + nblocks and slba < spec.lba + spec.nblocks
            ):
                continue
            armed.take()
            self._record("media_error", ssd_name, span)
            return spec.status
        return None

    # --------------------------------------------------- hook: ssd.fetch
    def drop_command(self, ssd_name: str, span=None) -> bool:
        """True = swallow the command: no CQE is ever posted."""
        now = self.sim.now
        for armed in self._drops:
            spec = armed.spec
            if armed.remaining == 0 or not _matches(spec, ssd_name):
                continue
            if not _in_window(spec, now):
                continue
            armed.take()
            self._record("cmd_drop", ssd_name, span)
            return True
        return False

    # ------------------------------------------------ hook: ssd.firmware
    def firmware_stall_ns(self, ssd_name: str) -> int:
        total = 0
        for armed in self._fw:
            spec = armed.spec
            if armed.remaining == 0 or not _matches(spec, ssd_name):
                continue
            armed.take()
            total += spec.stall_ns
        if total:
            self._record("firmware_stall", ssd_name)
        return total

    # ------------------------------------------- hook: engine.dispatch
    def engine_stall_ns(self, span=None) -> int:
        now = self.sim.now
        total = 0
        for spec in self._engine_stalls:
            if _in_window(spec, now):
                total += spec.stall_ns
        if total:
            self._record("engine_stall", "engine", span)
        return total

    # ------------------------------------------------------- timeline procs
    def _port(self, name: str):
        for fabric in self._fabrics:
            try:
                return fabric.port(name)
            except SimulationError:
                continue
        raise SimulationError(f"fault plan references unknown PCIe port {name!r}")

    def _timeline_proc(self, spec: FaultSpec):
        if spec.at_ns > self.sim.now:
            yield self.sim.timeout(spec.at_ns - self.sim.now)
        if spec.kind == "link_flap":
            self._port(spec.target).link_down(spec.duration_ns)
            self._record("link_flap", spec.target)
        elif spec.kind == "width_degrade":
            port = self._port(spec.target)
            original = port.lanes
            port.set_lanes(max(1, spec.lanes))
            self._record("width_degrade", spec.target)
            if spec.duration_ns:
                yield self.sim.timeout(spec.duration_ns)
                port.set_lanes(original)
        elif spec.kind == "hot_remove":
            if self.engine is None:
                raise SimulationError("hot_remove fault needs a bound BMS engine")
            slot_id = int(spec.target)
            removed = self.engine.surprise_remove(slot_id)
            self._record("hot_remove", spec.target)
            if spec.duration_ns and removed is not None:
                yield self.sim.timeout(spec.duration_ns)
                if self.controller is not None:
                    # drive re-seated; the controller watchdog notices the
                    # staged replacement and re-attaches the namespace
                    self.controller.stage_replacement(slot_id, removed)
                else:
                    self.engine.adaptor.slot_for(slot_id).attach_ssd(removed)
