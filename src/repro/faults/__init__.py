"""Deterministic, seeded fault injection for the BM-Store datapath.

``FaultPlan`` (:mod:`repro.faults.plan`) is the data model,
``FaultInjector`` (:mod:`repro.faults.injector`) arms it into a rig,
and :mod:`repro.faults.presets` has canned plans for the CLI.
"""

from .injector import FaultInjector
from .plan import FAULT_KINDS, DriverFaultPolicy, FaultPlan, FaultSpec
from .presets import PRESET_DESCRIPTIONS, PRESETS, get_preset, list_presets

__all__ = [
    "FAULT_KINDS",
    "DriverFaultPolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "PRESETS",
    "PRESET_DESCRIPTIONS",
    "get_preset",
    "list_presets",
]
