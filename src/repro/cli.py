"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list                       enumerate reproducible artifacts
reproduce [--only SUBSTR]  regenerate paper tables/figures
fio --scheme S --case C    run one Table IV case on one scheme
stats --scheme S --case C  run one case and print its observability dump
grid --schemes A,B ...     run a (scheme x case) grid, optionally parallel
bench [--check BASELINE]   kernel events/sec benchmark + regression gate
faults [--only SUBSTR]     availability under injected faults (--list: presets)
fleet --servers N ...      datacenter fleet: placement + rolling hot-upgrade
volumes [--cells N]        snapshot/thin-clone/CoW demo over NVMe-MI
push [--cells N]           pushdown ablation: mediated vs in-engine lookups
tco                        print the §VI-C TCO analysis
check [--static]           static determinism audit + checked reference run
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

__all__ = ["main"]

#: ``reproduce --quick`` subset: the analytic tables plus the three
#: heavy grid experiments that fan out over REPRO_WORKERS
QUICK_EXPERIMENT_IDS = (
    "table1",
    "table2",
    "tco",
    "fig8+table5",
    "fig9+table7",
    "fault-recovery",
)


def _experiment_registry():
    from .experiments import (
        ablations,
        extensions,
        fault_recovery,
        fig1,
        fleet_scale,
        burst_absorption,
        fig8_table5,
        fig9_table7,
        fig10,
        fig11,
        fig12,
        fig13a,
        fig13b_table8,
        fig14,
        fig15_table9,
        latency_breakdown,
        migration_vs_evacuation,
        pushdown_ablation,
        table1,
        table2,
        table6,
        tco_analysis,
        volumes_demo,
    )

    return [
        ("table1", "Table I feature matrix", table1.run),
        ("table2", "Table II FPGA resources", table2.run),
        ("tco", "§VI-C TCO analysis", tco_analysis.run),
        ("fig1", "Fig. 1 SPDK cores sweep", fig1.run),
        ("fig8+table5", "Fig. 8 / Table V bare metal", fig8_table5.run),
        ("table6", "Table VI kernel transparency", table6.run),
        ("fig9+table7", "Fig. 9 / Table VII single VM", fig9_table7.run),
        ("fig10", "Fig. 10 SSD scalability", fig10.run),
        ("fig11", "Fig. 11 multi-VM bandwidth", fig11.run),
        ("fig12", "Fig. 12 tail latency", fig12.run),
        ("fig13a", "Fig. 13a TPC-C", fig13a.run),
        ("fig13b+table8", "Fig. 13b / Table VIII Sysbench", fig13b_table8.run),
        ("fig14", "Fig. 14 mixed workloads", fig14.run),
        ("fig15+table9", "Fig. 15 / Table IX hot-upgrade", fig15_table9.run),
        ("latency-breakdown", "engine stage latencies (§V-B)", latency_breakdown.run),
        ("ablation-zerocopy", "zero-copy ablation", ablations.run_zero_copy),
        ("ablation-qos", "QoS ablation", ablations.run_qos_isolation),
        ("ablation-arm", "ARM-offload ablation", ablations.run_arm_offload),
        ("ext-sata", "SATA back-end tiers (§VI-A)", extensions.run_sata_tiers),
        ("ext-remote", "remote volumes (§VI-D)", extensions.run_remote_tiers),
        ("fault-recovery", "availability under injected faults",
         fault_recovery.run),
        ("fleet-scale", "fleet rolling hot-upgrade (beyond Fig. 15)",
         fleet_scale.run),
        ("volumes", "snapshots, thin clones, CoW faults (beyond §VI)",
         volumes_demo.run),
        ("migration-vs-evacuation",
         "live migration vs drain on surprise hot-removal",
         migration_vs_evacuation.run),
        ("pushdown", "computational pushdown ablation (beyond §VI)",
         pushdown_ablation.run),
        ("burst-absorption",
         "CXL buffer tier vs fixed DRAM under mixed bursts (beyond §VI)",
         burst_absorption.run),
    ]


def _cmd_list(_args) -> int:
    for exp_id, title, _run in _experiment_registry():
        print(f"{exp_id:20} {title}")
    return 0


def _cmd_reproduce(args) -> int:
    if args.workers is not None:
        # the grid experiments read REPRO_WORKERS as their default, so
        # one env var parallelizes every run_specs call below us
        os.environ["REPRO_WORKERS"] = str(max(1, args.workers))
    results = []
    for exp_id, _title, run in _experiment_registry():
        if args.quick and exp_id not in QUICK_EXPERIMENT_IDS:
            continue
        if args.only and args.only not in exp_id:
            continue
        start = time.time()
        result = run()
        print(result.table())
        print(f"  ({time.time() - start:.1f}s wall)\n")
        results.append(result)
    if not results:
        print(f"no experiment id contains {args.only!r}", file=sys.stderr)
        return 2
    if args.json:
        import json

        payload = [
            {
                "experiment_id": r.experiment_id,
                "title": r.title,
                "rows": r.rows,
                "notes": r.notes,
            }
            for r in results
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.output:
        from .analysis.report import render_markdown

        with open(args.output, "w") as fh:
            fh.write(render_markdown(
                results, header=f"Generated by `python -m repro reproduce`."
            ))
        print(f"wrote {args.output}")
    return 0


def _resolve_case(scheme: str, case: str):
    """(spec, error_code): validate --scheme/--case against the registries."""
    from .experiments.common import SCHEMES, quick_cases

    if scheme not in SCHEMES:
        print(f"unknown scheme {scheme!r}; choose from {sorted(SCHEMES)}",
              file=sys.stderr)
        return None, 2
    try:
        (spec,) = quick_cases([case])
    except KeyError:
        from .workloads.fio import TABLE_IV_CASES

        print(f"unknown case {case!r}; choose from {sorted(TABLE_IV_CASES)}",
              file=sys.stderr)
        return None, 2
    return spec, 0


def _resolve_policy(raw):
    """(policy, error_code): validate a --policy spelling up front."""
    if not raw:
        return None, 0
    from .host.policy import parse_policy

    try:
        return parse_policy(raw), 0
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None, 2


def _print_fault_presets() -> int:
    """The ``--faults list`` / ``faults --list`` listing."""
    from .faults import list_presets

    width = max(len(name) for name, _ in list_presets())
    for name, description in list_presets():
        print(f"{name:<{width}}  {description}")
    return 0


def _cmd_fio(args) -> int:
    from .experiments.common import run_case

    if args.faults == "list":
        return _print_fault_presets()
    spec, err = _resolve_case(args.scheme, args.case)
    if spec is None:
        return err
    faults = None
    if args.faults:
        from .faults import get_preset

        try:
            faults = get_preset(args.faults)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    policy, err = _resolve_policy(args.policy)
    if err:
        return err
    result = run_case(args.scheme, spec, seed=args.seed, faults=faults,
                      policy=policy)
    if args.json:
        import json

        out = {
            "scheme": args.scheme,
            "case": spec.name,
            "seed": args.seed,
            "faults": args.faults,
            "ios": result.fio.ios,
            "errors": result.errors,
            "iops": round(result.iops, 3),
            "bandwidth_mbps": round(result.bandwidth_mbps, 3),
            "avg_latency_us": round(result.avg_latency_us, 3),
            "p99_us": round(result.latency.p99_us, 3) if result.latency else None,
        }
        fault_counters = {
            label: metric.value
            for kind, label, metric in result.obs.iter_metrics()
            if kind == "counter"
            and label.startswith(("driver_", "faults_injected", "span_faults"))
        }
        if fault_counters:
            out["fault_counters"] = fault_counters
        print(json.dumps(out, sort_keys=True))
        return 0
    line = (f"{args.scheme} / {spec.name}: {result.iops / 1e3:.1f} KIOPS, "
            f"{result.bandwidth_mbps:.0f} MB/s, "
            f"avg {result.avg_latency_us:.1f} us")
    if result.latency:
        line += f", p99 {result.latency.p99_us:.1f} us"
    if result.errors:
        line += f", {result.errors} errors"
    print(line)
    return 0


def _cmd_stats(args) -> int:
    import json

    from .experiments.common import run_case
    from .obs.spans import STAMP_ORDER

    spec, err = _resolve_case(args.scheme, args.case)
    if spec is None:
        return err
    case = run_case(args.scheme, spec, seed=args.seed)
    if args.json:
        print(json.dumps(case.snapshot, indent=2, sort_keys=True))
        return 0

    reg = case.obs
    print(f"{args.scheme} / {spec.name}: {case.iops / 1e3:.1f} KIOPS, "
          f"{case.bandwidth_mbps:.0f} MB/s, avg {case.avg_latency_us:.1f} us")

    stage_hists = reg.histograms("span_stage_ns")
    if stage_hists:
        print("\nper-stage latency from recorded spans (ns):")
        print(f"  {'stage':<14} {'count':>8} {'p50':>10} {'p99':>10}")
        for stage in STAMP_ORDER[1:]:
            h = stage_hists.get((("stage", stage),))
            if h is None or h.count == 0:
                continue
            print(f"  {stage:<14} {h.count:>8} {h.p50:>10.0f} {h.p99:>10.0f}")
        totals = reg.histograms("span_total_ns").get(())
        if totals is not None and totals.count:
            print(f"  {'total':<14} {totals.count:>8} {totals.p50:>10.0f} "
                  f"{totals.p99:>10.0f}")
    else:
        print("\nno spans recorded (scheme not instrumented end to end)")

    ns_ops = reg.counters("ns_ops")
    if ns_ops:
        elapsed_s = (spec.ramp_ns + spec.runtime_ns) / 1e9
        print("\nper-namespace I/O (engine monitor):")
        for labels, counter in sorted(ns_ops.items()):
            tags = dict(labels)
            print(f"  {tags.get('ns', '?'):<12} {tags.get('op', '?'):<6} "
                  f"{counter.value:>9} ops  "
                  f"{counter.value / elapsed_s / 1e3:>8.1f} KIOPS")
    spans = reg.spans
    print(f"\nspans: {len(spans)} recorded ({len(spans.complete())} complete, "
          f"{spans.dropped} dropped)")
    return 0


def _split_csv(raw: str) -> list[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _cmd_grid(args) -> int:
    import json

    from .experiments.common import SCHEMES
    from .runner import run_grid
    from .workloads.fio import TABLE_IV_CASES

    if args.faults == "list":
        return _print_fault_presets()
    schemes = _split_csv(args.schemes)
    cases = _split_csv(args.cases)
    bad = [s for s in schemes if s not in SCHEMES]
    if bad:
        print(f"unknown scheme(s) {bad}; choose from {sorted(SCHEMES)}",
              file=sys.stderr)
        return 2
    bad = [c for c in cases if c not in TABLE_IV_CASES]
    if bad:
        print(f"unknown case(s) {bad}; choose from {sorted(TABLE_IV_CASES)}",
              file=sys.stderr)
        return 2
    if args.faults:
        from .faults import get_preset

        try:
            get_preset(args.faults)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    _, err = _resolve_policy(args.policy)
    if err:
        return err
    payloads = run_grid(
        schemes, cases, seed=args.seed, faults=args.faults,
        obs_mode=args.obs_mode, workers=args.workers, policy=args.policy,
    )
    if not args.snapshots:
        for p in payloads:
            p.pop("snapshot", None)
    text = json.dumps(payloads, indent=2, sort_keys=True)
    if args.json and args.json != "-":
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.json} ({len(payloads)} runs)")
    else:
        print(text)
    return 0


def _cmd_bench(args) -> int:
    import json

    from . import bench

    cases = _split_csv(args.cases) if args.cases else None
    if args.quick:
        cases = list(bench.QUICK_BENCH_CASES)
    schemes = _split_csv(args.schemes) if args.schemes else bench.BENCH_SCHEMES
    _, err = _resolve_policy(args.policy)
    if err:
        return err
    snapshot = bench.run_bench(schemes, cases, seed=args.seed,
                               obs_mode=args.obs_mode, policy=args.policy,
                               repeats=args.repeats)
    print(bench.render(snapshot))
    out = args.out or bench.bench_filename()
    with open(out, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    if args.check:
        try:
            baseline = bench.load(args.check)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
        for warning in bench.compare_meta(snapshot, baseline):
            print(f"warning: {warning}", file=sys.stderr)
        failures = bench.compare(snapshot, baseline,
                                 tolerance=args.tolerance)
        if failures:
            print(f"\nREGRESSION vs {args.check}:", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"within {args.tolerance:.0%} of {args.check}")
    return 0


def _cmd_faults(args) -> int:
    from .experiments import fault_recovery

    if args.list:
        return _print_fault_presets()
    result = fault_recovery.run(seed=args.seed, only=args.only)
    if not result.rows:
        print(f"no fault class contains {args.only!r}; classes: "
              f"{', '.join(fault_recovery.FAULT_CLASS_NAMES)}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps({
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        }, indent=2, sort_keys=True, default=str))
        return 0
    print(result.table())
    return 0


def _cmd_fleet(args) -> int:
    import json

    from .fleet import (
        FleetRunConfig,
        PlacementError,
        POLICIES,
        build_fleet,
        make_tenants,
        render_report,
        run_fleet,
    )

    if args.faults == "list":
        return _print_fault_presets()
    if args.policy not in POLICIES:
        print(f"unknown policy {args.policy!r}; choose from {sorted(POLICIES)}",
              file=sys.stderr)
        return 2
    if args.faults:
        from .faults import get_preset

        try:
            get_preset(args.faults)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    try:
        fleet = build_fleet(num_servers=args.servers, num_racks=args.racks,
                            ssds_per_server=args.ssds)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    tenants = make_tenants(args.tenants, seed=args.seed)
    config = FleetRunConfig.quick() if args.quick else FleetRunConfig.full()
    reaction = "migrate" if args.migrate else args.reaction
    if reaction != "none":
        import dataclasses

        config = dataclasses.replace(config, reaction=reaction)
    try:
        report = run_fleet(fleet, tenants, policy=args.policy,
                           faults=args.faults, seed=args.seed,
                           workers=args.workers, config=config)
    except PlacementError as exc:
        print(f"placement failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json} "
                  f"({report['fleet']['servers']} servers, "
                  f"{len(report['waves'])} waves)")
        return 0
    print(render_report(report))
    return 0


def _cmd_volumes(args) -> int:
    from .experiments import volumes_demo

    result = volumes_demo.run(seed=args.seed, cells=args.cells,
                              workers=args.workers)
    if args.json:
        import json

        print(json.dumps({
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        }, indent=2, sort_keys=True, default=str))
        return 0
    print(result.table())
    return 0


def _cmd_push(args) -> int:
    from .experiments import pushdown_ablation

    result = pushdown_ablation.run(seed=args.seed, cells=args.cells,
                                   workers=args.workers)
    if args.json:
        import json

        print(json.dumps({
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        }, indent=2, sort_keys=True, default=str))
        return 0
    print(result.table())
    return 0


def _cmd_cxl(args) -> int:
    from .experiments import burst_absorption

    result = burst_absorption.run(seed=args.seed, cells=args.cells,
                                  workers=args.workers)
    if args.json:
        import json

        print(json.dumps({
            "experiment_id": result.experiment_id,
            "title": result.title,
            "rows": result.rows,
            "notes": result.notes,
        }, indent=2, sort_keys=True, default=str))
        return 0
    print(result.table())
    return 0


def _cmd_tco(_args) -> int:
    from .experiments import tco_analysis

    print(tco_analysis.run().table())
    return 0


def _exercise_qos_checker():
    """Drive the qos checker through a rate-limited micro-scenario.

    The Table IV quick cases provision unlimited namespaces, so a
    checked reference run never enters the QoS fast/buffered paths; this
    tiny world pushes commands through a limited namespace so ``repro
    check`` proves the qos invariants executed too.  Uses its own
    CheckContext: the kernel monotonicity shadow must not leak across
    two independent simulators.
    """
    from .checks import CheckContext
    from .core.qos import QoSLimits, QoSModule
    from .sim import Simulator

    sim = Simulator()
    ctx = CheckContext(checkers=["qos"])
    qos = QoSModule(sim, checks=ctx)
    qos.configure("ns", QoSLimits(max_iops=100_000.0, burst_ios=2))
    for _ in range(8):
        qos.admit("ns", 4096)
    sim.run()
    return ctx


def _exercise_push_checker():
    """Drive the push checker through one installed-program lookup.

    Reference cases never install a pushdown program, so a checked run
    would report zero ``push`` coverage; this micro-world installs a
    chase program and executes one shadow invocation so ``repro check``
    proves the sandbox-confinement hooks executed.  Own CheckContext for
    the same simulator-isolation reason as the qos micro-world.
    """
    from .baselines import build_bmstore
    from .checks import CheckContext
    from .push import chase_program

    ctx = CheckContext(checkers=["push"])
    rig = build_bmstore(num_ssds=1, checks=ctx)
    fn = rig.provision("pushchk", 8 * 1024 * 1024)
    driver = rig.baremetal_driver(fn)

    def proc():
        yield driver.install_push_program(chase_program([[0, 64]]))
        yield driver.push_exec({
            "carry": False, "key": b"k",
            "candidates": [{"index_lba": 0, "data_base": 1,
                            "shadow_ptr": 2, "hit": True}],
        })

    rig.sim.spawn(proc())
    rig.sim.run()
    return ctx


def _cmd_check(args) -> int:
    """Static determinism audit + a checked reference run."""
    import json

    from .checks import InvariantViolation, audit_tree, render_findings

    findings = audit_tree()
    payload = {"static_findings": [str(f) for f in findings]}
    if not args.json:
        print(render_findings(findings))
    if args.static:
        if args.json:
            print(json.dumps(payload, sort_keys=True))
        return 1 if findings else 0

    spec, err = _resolve_case(args.scheme, args.case)
    if spec is None:
        return err
    from .experiments.common import run_case

    violation = None
    coverage: dict[str, int] = {}
    try:
        case = run_case(args.scheme, spec, seed=args.seed, checks=args.checks)
        if case.checks is not None:
            coverage = case.checks.summary()
    except InvariantViolation as exc:
        violation = exc
    qos_ctx = _exercise_qos_checker()
    for name, count in qos_ctx.summary().items():
        coverage[name] = coverage.get(name, 0) + count
    if "push" in coverage:
        push_ctx = _exercise_push_checker()
        coverage["push"] += push_ctx.summary()["push"]

    payload.update({
        "scheme": args.scheme,
        "case": spec.name,
        "seed": args.seed,
        "checks": args.checks,
        "coverage": coverage,
        "violation": str(violation) if violation else None,
    })
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        if violation is not None:
            print(f"INVARIANT VIOLATION: {violation}")
        else:
            checked = sum(coverage.values())
            detail = ", ".join(f"{k}={v}" for k, v in sorted(coverage.items()))
            print(f"runtime invariants: clean "
                  f"({checked} checks: {detail})")
        zeros = [k for k, v in coverage.items() if v == 0]
        if zeros and violation is None:
            print(f"warning: checker(s) with zero coverage: {', '.join(zeros)}")
    return 1 if (findings or violation is not None) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns the exit code."""
    from . import __version__

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible artifacts")

    p = sub.add_parser("reproduce", help="regenerate paper tables/figures")
    p.add_argument("--only", default=None, help="substring filter on experiment id")
    p.add_argument("--quick", action="store_true",
                   help="only the fast subset of experiments "
                        f"({', '.join(QUICK_EXPERIMENT_IDS)})")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="fan grid experiments over N processes "
                        "(sets REPRO_WORKERS; results are identical)")
    p.add_argument("--output", default=None, help="write a markdown report here")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the result rows as JSON here")

    p = sub.add_parser("fio", help="run one fio case on one scheme")
    p.add_argument("--scheme", default="bmstore")
    p.add_argument("--case", default="rand-r-128")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--faults", default=None, metavar="PRESET",
                   help="arm a canned fault plan (see repro.faults.PRESETS)")
    p.add_argument("--policy", default=None, metavar="SPEC",
                   help="submission policy: a preset (shadow, batched, "
                        "coalesced, throughput), 'batched:16', or "
                        "'doorbell=shadow,coalesce=4,...'")
    p.add_argument("--json", action="store_true",
                   help="print one sorted-key JSON line (determinism checks)")

    p = sub.add_parser("stats",
                       help="run one case and print per-stage/per-ns stats")
    p.add_argument("--scheme", default="bmstore")
    p.add_argument("--case", default="rand-r-128")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--json", action="store_true",
                   help="dump the full metrics snapshot as JSON")

    p = sub.add_parser("grid",
                       help="run a (scheme x case) grid, optionally parallel")
    p.add_argument("--schemes", default="native,bmstore",
                   help="comma-separated scheme names")
    p.add_argument("--cases", default="rand-r-1,rand-w-1",
                   help="comma-separated Table IV case names")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--faults", default=None, metavar="PRESET",
                   help="arm a canned fault plan on every run")
    p.add_argument("--policy", default=None, metavar="SPEC",
                   help="submission policy spelling applied to every run")
    p.add_argument("--obs-mode", default="full",
                   choices=("full", "sampled", "counters"))
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes (default REPRO_WORKERS or 1)")
    p.add_argument("--snapshots", action="store_true",
                   help="include full metric snapshots in the output")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write JSON here instead of stdout ('-' = stdout)")

    p = sub.add_parser("bench",
                       help="kernel events/sec benchmark + regression gate")
    p.add_argument("--quick", action="store_true",
                   help="the CI subset of cases (rand-r-1, rand-r-128)")
    p.add_argument("--schemes", default=None,
                   help="comma-separated scheme names "
                        "(default native,bmstore,passthrough)")
    p.add_argument("--cases", default=None,
                   help="comma-separated case names (default the quick subset)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--obs-mode", default="counters",
                   choices=("full", "sampled", "counters"))
    p.add_argument("--policy", default=None, metavar="SPEC",
                   help="submission policy spelling applied to every run")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="snapshot path (default BENCH_<stamp>.json)")
    p.add_argument("--check", default=None, metavar="BASELINE",
                   help="fail if events/sec regresses vs this snapshot")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed fractional events/sec drop (default 0.25)")
    p.add_argument("--repeats", type=int, default=1,
                   help="runs per cell, keeping the best wall clock "
                        "(default 1; CI uses 3 to shed scheduler noise)")

    p = sub.add_parser("faults",
                       help="availability timeline per injected fault class")
    p.add_argument("--only", default=None, help="substring filter on fault class")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--list", action="store_true",
                   help="list the canned fault presets and exit")
    p.add_argument("--json", action="store_true",
                   help="print the result rows as JSON")

    p = sub.add_parser("fleet",
                       help="fleet simulation: placement + rolling hot-upgrade")
    p.add_argument("--servers", type=int, default=24, metavar="N")
    p.add_argument("--racks", type=int, default=6, metavar="N",
                   help="failure domains (upgrade waves take <=1 server/rack)")
    p.add_argument("--ssds", type=int, default=1, metavar="N",
                   help="backend SSDs per server")
    p.add_argument("--tenants", type=int, default=48, metavar="N")
    p.add_argument("--policy", default="spread",
                   help="placement policy: spread | binpack | qos")
    p.add_argument("--faults", default=None, metavar="PRESET",
                   help="arm a canned fault plan on one server "
                        "('list' to enumerate presets)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="fan per-server sims over N processes "
                        "(results are identical)")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized run (short activation, ~2s simulated)")
    p.add_argument("--migrate", action="store_true",
                   help="react to surprise hot-removal with live migration "
                        "(shorthand for --reaction migrate)")
    p.add_argument("--reaction", default="none",
                   choices=("none", "drain", "migrate"),
                   help="hot-removal reaction: none (ride it out), drain "
                        "(stop + cold copy), migrate (pre-copy + cutover)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full fleet report as JSON ('-' = stdout)")

    p = sub.add_parser("volumes",
                       help="snapshot/thin-clone/CoW demo over NVMe-MI")
    p.add_argument("--cells", type=int, default=4, metavar="N",
                   help="independent seeded worlds (each snapshots a golden "
                        "image and writes through its clones)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="fan cells over N processes (results are identical)")
    p.add_argument("--json", action="store_true",
                   help="print the result rows as JSON")

    p = sub.add_parser("push",
                       help="pushdown ablation: mediated vs in-engine lookups")
    p.add_argument("--cells", type=int, default=4, metavar="N",
                   help="independent seeded worlds (each runs both read "
                        "paths over the same minikv workload)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="fan cells over N processes (results are identical)")
    p.add_argument("--json", action="store_true",
                   help="print the result rows as JSON")

    p = sub.add_parser("cxl",
                       help="burst-absorption ablation (fixed on-card DRAM "
                            "vs the CXL buffer tier, clean + hot-remove "
                            "cells)")
    p.add_argument("--cells", type=int, default=4,
                   help="seeded burst cells (odd cells surprise-remove "
                        "the lending slot mid-burst)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="fan cells over N processes (results are identical)")
    p.add_argument("--json", action="store_true",
                   help="print the result rows as JSON")

    sub.add_parser("tco", help="print the TCO analysis")

    p = sub.add_parser("check",
                       help="static determinism audit + checked reference run")
    p.add_argument("--static", action="store_true",
                   help="only the AST audit; skip the runtime reference run")
    p.add_argument("--scheme", default="bmstore")
    p.add_argument("--case", default="rand-r-1")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--checks", default="all", metavar="NAMES",
                   help="checker subset, e.g. 'ring,qos' (default all)")
    p.add_argument("--json", action="store_true",
                   help="print one sorted-key JSON line")

    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "reproduce": _cmd_reproduce,
        "fio": _cmd_fio,
        "stats": _cmd_stats,
        "grid": _cmd_grid,
        "bench": _cmd_bench,
        "faults": _cmd_faults,
        "fleet": _cmd_fleet,
        "volumes": _cmd_volumes,
        "push": _cmd_push,
        "cxl": _cmd_cxl,
        "tco": _cmd_tco,
        "check": _cmd_check,
    }[args.command]
    return handler(args)
