"""Interrupt-driven host NVMe driver.

This is the standard-NVMe-driver role of the paper's transparency
story: the same driver code binds a native SSD, a BM-Store PF/VF, or a
VFIO-assigned device inside a VM, because all of them present standard
NVMe queues + doorbells + MSI-X.

Costs modeled per the active :class:`KernelProfile`: submission CPU
overhead, a serialized per-controller submission section (the classic
queue lock), IRQ entry cost, and a completion-path extra — plus, in a
VM, interrupt-injection latency supplied by the VM wrapper.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from ..faults.plan import DriverFaultPolicy
from ..nvme.command import CQE, SQE, alloc_sqe, free_cqe, free_sqe
from ..nvme.namespace import Namespace
from ..nvme.prp import build_prps
from ..nvme.queues import CompletionQueue, QueuePair, SubmissionQueue
from ..nvme.spec import SQE_BYTES, AdminOpcode, IOOpcode, StatusCode
from ..obs import IOSpan, MetricsRegistry
from ..pcie.function import PCIeFunction
from ..sim import Event, Resource, SimulationError, Simulator, Store
from .block import CompletionInfo
from .environment import Host
from .kernel_profile import KernelProfile
from .memory import PAGE_SIZE, BufferPool
from .policy import DEFAULT_POLICY, SubmissionPolicy

__all__ = ["NVMeControllerTarget", "NVMeDriver", "DriverStats"]


class NVMeControllerTarget(Protocol):
    """What the driver binds to: any standard NVMe controller."""

    function: PCIeFunction
    namespaces: dict[int, Namespace]

    def attach_queue_pair(self, qid: int, sq: SubmissionQueue, cq: CompletionQueue) -> QueuePair:
        ...  # pragma: no cover

    def detach_queue_pair(self, qid: int) -> None:
        ...  # pragma: no cover

    def doorbell_addr(self, qid: int, is_cq: bool = False) -> int:
        ...  # pragma: no cover


class DriverStats:
    """Submission/completion/interrupt counters of one bound driver."""
    __slots__ = ("submitted", "completed", "errors", "interrupts",
                 "timeouts", "aborts", "retries", "retries_exhausted",
                 "doorbell_mmio", "doorbell_elided", "sqe_reclaims")

    def __init__(self) -> None:
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self.interrupts = 0
        self.timeouts = 0
        self.aborts = 0
        self.retries = 0
        self.retries_exhausted = 0
        #: leaked SQEs (timed-out commands) recovered by their ring
        self.sqe_reclaims = 0
        #: MMIO doorbell writes actually issued (shadow/batched modes)
        self.doorbell_mmio = 0
        #: doorbell writes avoided by the shadow/batched machinery
        self.doorbell_elided = 0


class NVMeDriver:
    """One bound NVMe controller, exposing the BlockTarget interface."""

    def __init__(
        self,
        host: Host,
        controller: NVMeControllerTarget,
        nsid: int = 1,
        num_io_queues: int = 4,
        queue_depth: int = 1024,
        kernel: Optional[KernelProfile] = None,
        extra_submit_ns: int = 0,
        extra_completion_ns: int = 0,
        lock_ns: Optional[int] = None,
        contended_lock_ns: Optional[int] = None,
        name: str = "nvme0",
        obs: Optional[MetricsRegistry] = None,
        fault_policy: Optional[DriverFaultPolicy] = None,
        checks=None,
        policy: Optional[SubmissionPolicy] = None,
    ):
        self.sim: Simulator = host.sim
        self.host = host
        self.controller = controller
        self.nsid = nsid
        self.name = name
        self.kernel = kernel or host.kernel
        self.extra_submit_ns = extra_submit_ns
        self.extra_completion_ns = extra_completion_ns
        self.lock_ns = lock_ns if lock_ns is not None else self.kernel.submit_lock_ns
        # under contention the lock section costs more (cacheline
        # bouncing, vCPU scheduling); uncontended it is just the hold
        self.contended_lock_ns = (
            contended_lock_ns if contended_lock_ns is not None else self.lock_ns
        )
        self.stats = DriverStats()
        self.obs = obs
        # handles + names resolved once; the submission/completion path
        # must not rebuild labeled metric keys or f-strings per I/O
        self._io_event_name = name + ".io"
        self._submit_pname = name + ".submit"
        self._iosup_pname = name + ".iosup"
        self._irq_pname = name + ".irq"
        self._c_submitted: dict[int, Any] = {}
        self._c_interrupts: dict[int, Any] = {}
        self._c_completed: dict[int, Any] = {}
        if obs is not None:
            self._c_errors = obs.counter("driver_errors", driver=name)
            self._h_latency = obs.histogram("io_latency_ns", driver=name)
        #: submission policy: doorbell mode + CQE coalescing.  The
        #: default reproduces the classic MMIO-per-command,
        #: IRQ-per-CQE path with an identical event sequence.
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self._unrung: dict[int, int] = {}
        self._batch_timer_live: set[int] = set()
        # production-shaped error handling; None = legacy trusting path
        # with zero extra events per I/O
        self.fault_policy = fault_policy
        #: CheckContext; rings/pool bind as the driver creates them
        self.checks = checks
        self._pool = BufferPool(host.memory)
        if checks is not None:
            checks.bind_pool(self._pool)
        self._lock = Resource(self.sim, 1, name=f"{name}.sqlock")
        self._pending: dict[tuple[int, int], dict[str, Any]] = {}
        #: recycled per-I/O context dicts; every key is overwritten on
        #: reuse, so entries may be returned without clearing
        self._ctx_pool: list[dict[str, Any]] = []
        self._next_cid: dict[int, int] = {}
        self._qps: dict[int, QueuePair] = {}
        self._slots: dict[int, Resource] = {}
        self._cqe_stores: dict[int, Store] = {}
        self._rr = 0
        self._setup_admin_queue()
        self._setup_io_queues(num_io_queues, queue_depth)

    # ------------------------------------------------------------- queue setup
    def _make_queue_pair(self, qid: int, depth: int) -> QueuePair:
        mem = self.host.memory
        sq = SubmissionQueue(mem, mem.alloc(depth * 64), depth, sqid=qid, cqid=qid)
        sq.on_reclaim = self._note_reclaims
        cq = CompletionQueue(mem, mem.alloc(depth * 16), depth, cqid=qid)
        if self.checks is not None:
            self.checks.bind_ring(sq)
            self.checks.bind_ring(cq)
        if qid != 0:
            # the admin queue always runs the classic immediate path
            if self.policy.doorbell == "shadow":
                sq.shadow_mode = True
            if self.policy.coalescing:
                cq.coalesce_threshold = self.policy.coalesce_threshold
                cq.coalesce_timeout_ns = self.policy.coalesce_timeout_ns
            self._unrung[qid] = 0
        qp = self.controller.attach_queue_pair(qid, sq, cq)
        addr, data = self.host.irq.allocate(lambda _v, q=qid: self._on_interrupt(q))
        self.controller.function.msix.configure(qid, addr, data)
        cq.irq_vector = qid
        self._qps[qid] = qp
        self._next_cid[qid] = 0
        if self.obs is not None:
            q = str(qid)
            self._c_interrupts[qid] = self.obs.counter(
                "driver_interrupts", driver=self.name, qid=q)
            if qid != 0:  # the admin queue never submits/completes I/O
                self._c_submitted[qid] = self.obs.counter(
                    "driver_submitted", driver=self.name, qid=q)
                self._c_completed[qid] = self.obs.counter(
                    "driver_completed", driver=self.name, qid=q)
        self._cqe_stores[qid] = Store(self.sim, name=f"{self.name}.cqe{qid}")
        self.sim.process(self._completion_worker(qid), name=f"{self.name}.sirq{qid}")
        return qp

    def _setup_admin_queue(self) -> None:
        self._make_queue_pair(0, 32)

    def _setup_io_queues(self, count: int, depth: int) -> None:
        for qid in range(1, count + 1):
            self._make_queue_pair(qid, depth)
            self._slots[qid] = Resource(self.sim, depth - 1, name=f"{self.name}.q{qid}")
        self._qid_ring = sorted(self._slots)

    @property
    def io_queue_ids(self) -> list[int]:
        return sorted(self._slots)

    @property
    def namespace(self) -> Namespace:
        ns = self.controller.namespaces.get(self.nsid)
        if ns is None:
            raise SimulationError(f"{self.name}: namespace {self.nsid} not found")
        return ns

    # --------------------------------------------------------- BlockTarget API
    @property
    def num_blocks(self) -> int:
        return self.namespace.num_blocks

    @property
    def block_bytes(self) -> int:
        return self.namespace.block_bytes

    def read(self, lba: int, nblocks: int, want_data: bool = False) -> Event:
        return self._submit_io(int(IOOpcode.READ), lba, nblocks, None, want_data)

    def write(self, lba: int, nblocks: int, payload: Optional[bytes] = None) -> Event:
        return self._submit_io(int(IOOpcode.WRITE), lba, nblocks, payload, False)

    def flush(self) -> Event:
        return self._submit_io(int(IOOpcode.FLUSH), 0, 0, None, False)

    # ------------------------------------------------------------- pushdown
    def install_push_program(self, program: dict) -> Event:
        """Install a pushdown program on this driver's namespace via the
        in-band vendor admin path (the engine validates it)."""
        return self.admin(AdminOpcode.PUSH_INSTALL, payload=program)

    def uninstall_push_program(self) -> Event:
        return self.admin(AdminOpcode.PUSH_UNINSTALL)

    def push_exec(self, invocation: dict) -> Event:
        """Run one installed-program invocation at the engine.

        The invocation object rides in a single DMA page; the engine's
        interpreter parks a :class:`~repro.push.manager.PushResult` back
        at the same page, returned as ``CompletionInfo.data``.
        """
        done = self.sim.event(name=self._io_event_name)
        self.sim.spawn(self._push_proc(invocation, done),
                       name=self._submit_pname)
        return done

    def _push_proc(self, invocation: dict, done: Event):
        start = self.sim.now
        span = None
        if self.obs is not None and self.obs.want_span():
            span = IOSpan("push", origin=self.name)
            span.stamp("submit", start)
        yield self.sim.timeout(self.kernel.submit_overhead_ns + self.extra_submit_ns)
        qid = self._pick_queue()
        yield self._slots[qid].acquire()

        length = PAGE_SIZE  # one page carries the invocation + result
        buf = self._pool.get(length)
        self.host.memory.store_obj(buf, invocation)
        prp1, prp2 = build_prps(self.host.memory, buf, length)

        contended = self._lock.in_use > 0 or self._lock.queued > 0
        yield self._lock.acquire()
        yield self.sim.timeout(self.contended_lock_ns if contended else self.lock_ns)
        qp = self._qps[qid]
        while qp.sq.is_full:
            self._lock.release()
            yield qp.sq.wait_space(self.sim)
            yield self._lock.acquire()
            yield self.sim.timeout(self.contended_lock_ns)
        cid = self._next_cid[qid] = (self._next_cid[qid] + 1) % 0xFFFF
        sqe = alloc_sqe(
            opcode=int(IOOpcode.PUSH_EXEC), cid=cid, nsid=self.nsid,
            slba=0, nlb=0, prp1=prp1, prp2=prp2,
            submit_time_ns=start,
        )
        if span is not None:
            sqe.span = span
        addr = qp.sq.push(sqe)
        pool = self._ctx_pool
        ctx = pool.pop() if pool else {}
        ctx["done"] = done
        ctx["start"] = start
        ctx["buf"] = buf
        ctx["length"] = length
        ctx["want_data"] = False
        ctx["push"] = True
        ctx["qid"] = qid
        ctx["span"] = span
        ctx["sqe"] = sqe
        ctx["slot"] = (addr - qp.sq.base) // SQE_BYTES
        self._pending[(qid, cid)] = ctx
        self.stats.submitted += 1
        if self.obs is not None:
            self._c_submitted[qid].inc()
        self._lock.release()
        yield from self._ring_doorbell(qid, qp)

    # ---------------------------------------------------------------- submit
    def _submit_io(
        self,
        opcode: int,
        lba: int,
        nblocks: int,
        payload: Optional[bytes],
        want_data: bool,
    ) -> Event:
        done = self.sim.event(name=self._io_event_name)
        if self.fault_policy is not None:
            self.sim.spawn(
                self._supervised_proc(opcode, lba, nblocks, payload, want_data, done),
                name=self._iosup_pname,
            )
        else:
            self.sim.spawn(
                self._submit_proc(opcode, lba, nblocks, payload, want_data, done),
                name=self._submit_pname,
            )
        return done

    def _pick_queue(self) -> int:
        qids = self._qid_ring
        self._rr = (self._rr + 1) % len(qids)
        return qids[self._rr]

    _SPAN_OPS = {
        int(IOOpcode.READ): "read",
        int(IOOpcode.WRITE): "write",
        int(IOOpcode.FLUSH): "flush",
    }

    def _supervised_proc(self, opcode, lba, nblocks, payload, want_data, done):
        """Error-hardened submission: per-command timeout, Abort +
        bounded exponential-backoff retry, requeue on hot-plug errors.

        The same command is re-driven through the normal submission
        path on each attempt; the caller's ``done`` event fires exactly
        once, with the final (possibly failed) :class:`CompletionInfo`.
        """
        policy = self.fault_policy
        start = self.sim.now
        last_status = int(StatusCode.ABORTED_BY_REQUEST)
        attempts = max(1, policy.max_retries + 1)
        for attempt in range(attempts):
            handle: dict[str, Any] = {}
            inner = self.sim.event(name=f"{self.name}.attempt")
            self.sim.process(
                self._submit_proc(opcode, lba, nblocks, payload, want_data,
                                  inner, handle),
                name=f"{self.name}.submit",
            )
            if policy.timeout_ns:
                yield self.sim.any_of([inner, self.sim.timeout(policy.timeout_ns)])
            else:
                yield inner
            if inner.triggered:
                info: CompletionInfo = inner.value
                last_status = int(info.status)
                if info.ok:
                    done.succeed(CompletionInfo(
                        True, info.status, info.data, self.sim.now - start))
                    return
                if last_status not in policy.retryable:
                    done.succeed(CompletionInfo(
                        False, info.status, None, self.sim.now - start))
                    return
            else:
                # per-command deadline fired before any CQE arrived
                self.stats.timeouts += 1
                if self.obs is not None:
                    self.obs.counter("driver_timeouts", driver=self.name).inc()
                yield from self._abort_attempt(handle)
                last_status = int(StatusCode.ABORTED_BY_REQUEST)
            if attempt == attempts - 1:
                break
            delay = min(policy.backoff_cap_ns, policy.backoff_base_ns * (1 << attempt))
            if delay > 0:
                yield self.sim.timeout(delay)
            self.stats.retries += 1
            if self.obs is not None:
                self.obs.counter("driver_retries", driver=self.name).inc()
        self.stats.retries_exhausted += 1
        if self.obs is not None:
            self.obs.counter("driver_retries_exhausted", driver=self.name).inc()
        done.succeed(CompletionInfo(False, last_status, None, self.sim.now - start))

    def _abort_attempt(self, handle: dict):
        """Host-side cleanup + NVMe Abort for a timed-out command."""
        qid, cid = handle.get("qid"), handle.get("cid")
        if qid is None or cid is None:
            # the attempt never reached the SQ (e.g. queued on a full
            # queue); it will complete on its own and be ignored
            return
        ctx = self._pending.pop((qid, cid), None)
        if ctx is not None:
            if ctx["buf"]:
                self._pool.put(ctx["buf"], ctx["length"])
            if qid in self._slots:
                self._slots[qid].release()
            span = ctx.get("span")
            if span is not None and self.obs is not None:
                span.note_fault("host_timeout")
                self.obs.finish_span(span)
            # the SQE cannot be freed — its stale ring entry may still
            # be fetched — but the ring tracks it and recycles it once
            # the slot is overwritten or the queue is re-attached
            sqe = ctx.get("sqe")
            if sqe is not None and ctx.get("slot") is not None:
                self._qps[qid].sq.note_leaked(ctx["slot"], sqe)
        self.stats.aborts += 1
        if self.obs is not None:
            self.obs.counter("driver_aborts", driver=self.name).inc()
        yield self.admin(AdminOpcode.ABORT, cdw10=(cid & 0xFFFF) | (qid << 16))

    def _submit_proc(self, opcode, lba, nblocks, payload, want_data, done,
                     handle: Optional[dict] = None):
        start = self.sim.now
        span = None
        if self.obs is not None and self.obs.want_span():
            span = IOSpan(self._SPAN_OPS.get(opcode, hex(opcode)), origin=self.name)
            span.stamp("submit", start)
        yield self.sim.timeout(self.kernel.submit_overhead_ns + self.extra_submit_ns)
        qid = self._pick_queue()
        yield self._slots[qid].acquire()

        length = nblocks * self.block_bytes if opcode != int(IOOpcode.FLUSH) else 0
        buf = 0
        prp1 = prp2 = 0
        if length:
            buf = self._pool.get(length)
            if payload is not None:
                self.host.memory.mem_write(buf, length, payload)
            prp1, prp2 = build_prps(self.host.memory, buf, length)

        contended = self._lock.in_use > 0 or self._lock.queued > 0
        yield self._lock.acquire()
        yield self.sim.timeout(self.contended_lock_ns if contended else self.lock_ns)
        qp = self._qps[qid]
        while qp.sq.is_full:
            # timed-out commands release their queue slot before the
            # device fetches their stale SQE, so the ring can be full
            # even with a slot held; block until the consumer frees one
            self._lock.release()
            yield qp.sq.wait_space(self.sim)
            yield self._lock.acquire()
            yield self.sim.timeout(self.contended_lock_ns)
        cid = self._next_cid[qid] = (self._next_cid[qid] + 1) % 0xFFFF
        if handle is not None:
            handle["qid"], handle["cid"] = qid, cid
        sqe = alloc_sqe(
            opcode=opcode, cid=cid, nsid=self.nsid,
            slba=lba, nlb=max(0, nblocks - 1),
            prp1=prp1, prp2=prp2, payload=payload,
            submit_time_ns=start,
        )
        if span is not None:
            sqe.span = span
        addr = qp.sq.push(sqe)
        pool = self._ctx_pool
        ctx = pool.pop() if pool else {}
        ctx["done"] = done
        ctx["start"] = start
        ctx["buf"] = buf
        ctx["length"] = length
        ctx["want_data"] = want_data
        ctx["push"] = False
        ctx["qid"] = qid
        ctx["span"] = span
        ctx["sqe"] = sqe
        ctx["slot"] = (addr - qp.sq.base) // SQE_BYTES
        self._pending[(qid, cid)] = ctx
        self.stats.submitted += 1
        if self.obs is not None:
            self._c_submitted[qid].inc()
        self._lock.release()
        yield from self._ring_doorbell(qid, qp)

    # ---------------------------------------------------------------- doorbell
    def _ring_doorbell(self, qid: int, qp: QueuePair):
        """Mode-dependent doorbell after a push into ``qp.sq``.

        ``immediate`` is the exact legacy tail: one posted MMIO write
        per command, no extra state touched.
        """
        mode = self.policy.doorbell
        if mode == "immediate" or qid == 0:
            self.stats.doorbell_mmio += 1
            yield self.host.fabric.cpu_write(qp.sq_doorbell, 4)
            return
        sq = qp.sq
        if mode == "shadow":
            if sq.publish_tail():
                if sq.checks is not None:
                    sq.checks.on_db_flush(sq, 1)
                self.stats.doorbell_mmio += 1
                yield self.host.fabric.cpu_write(qp.sq_doorbell, 4)
            else:
                self.stats.doorbell_elided += 1
            return
        # batched: accumulate, ring on depth / ring-full / deadline
        self._unrung[qid] += 1
        if self._unrung[qid] >= self.policy.batch_depth or sq.is_full:
            yield from self._flush_doorbell(qid, qp)
        else:
            self.stats.doorbell_elided += 1
            if (self.policy.batch_timeout_ns > 0
                    and qid not in self._batch_timer_live):
                self._batch_timer_live.add(qid)
                self.sim.process(self._batch_deadline(qid),
                                 name=f"{self.name}.dbflush{qid}")

    def _flush_doorbell(self, qid: int, qp: QueuePair):
        batched, self._unrung[qid] = self._unrung[qid], 0
        if batched <= 0:
            return
        if qp.sq.checks is not None:
            qp.sq.checks.on_db_flush(qp.sq, batched)
        self.stats.doorbell_mmio += 1
        yield self.host.fabric.cpu_write(qp.sq_doorbell, 4)

    def _batch_deadline(self, qid: int):
        """Deterministic flush of a partial doorbell batch, so shallow
        queues are never stranded waiting for peers that never come."""
        yield self.sim.timeout(self.policy.batch_timeout_ns)
        self._batch_timer_live.discard(qid)
        if self._unrung.get(qid, 0):
            yield from self._flush_doorbell(qid, self._qps[qid])

    # ------------------------------------------------------------- completion
    def _note_reclaims(self, count: int) -> None:
        """Ring callback: leaked SQEs just rejoined the free list."""
        self.stats.sqe_reclaims += count
        if self.obs is not None:
            self.obs.counter("sqe_reclaims", driver=self.name).inc(count)

    def _on_interrupt(self, qid: int) -> None:
        self.stats.interrupts += 1
        if self.obs is not None:
            self._c_interrupts[qid].inc()
        self.sim.spawn(self._irq_proc(qid), name=self._irq_pname)

    def _irq_proc(self, qid: int):
        yield self.sim.timeout(self.kernel.irq_overhead_ns)
        qp = self._qps[qid]
        drained = 0
        while True:
            cqe = qp.cq.poll()
            if cqe is None:
                break
            drained += 1
            self._cqe_stores[qid].put(cqe)
        if drained:
            yield self.host.fabric.cpu_write(qp.cq_doorbell, 4)

    def _completion_worker(self, qid: int):
        """Per-queue softirq: completions are handled *serially*, so the
        kernel's completion-path cost bounds per-queue completion rate
        (the effect behind Table VI's Fedora dip)."""
        extra = self.kernel.completion_extra_ns + self.extra_completion_ns
        store = self._cqe_stores[qid]
        while True:
            cqe = yield store.get()
            if extra:
                yield self.sim.timeout(extra)
            self._finalize(qid, cqe)

    def _finalize(self, qid: int, cqe: CQE):
        ctx = self._pending.pop((qid, cqe.cid), None)
        if ctx is None:
            free_cqe(cqe)
            return
        self.stats.completed += 1
        status = cqe.status
        ok = status == int(StatusCode.SUCCESS)
        free_cqe(cqe)
        if not ok:
            self.stats.errors += 1
        data = None
        if ctx.get("push"):
            # the engine parked a PushResult over the invocation object;
            # always pop it so the recycled buffer never shadows later
            # byte reads at the same address
            obj = self.host.memory.pop_obj(ctx["buf"])
            if ok:
                data = obj
        elif ctx["want_data"] and ctx["length"]:
            data = self.host.memory.mem_read(ctx["buf"], ctx["length"])
        if ctx["buf"]:
            self._pool.put(ctx["buf"], ctx["length"])
        if qid in self._slots:
            self._slots[qid].release()
        latency = self.sim.now - ctx["start"]
        if self.obs is not None and qid != 0:
            span = ctx.get("span")
            if span is not None:
                span.stamp("interrupt", self.sim.now)
                self.obs.finish_span(span)
            self._c_completed[qid].inc()
            if not ok:
                self._c_errors.inc()
            self._h_latency.observe(latency)
        # the completed command's SQE is dead: the device fetched it (a
        # CQE exists) and the consumer is past its ring slot, so it can
        # rejoin the free list.  Timed-out commands never get here.
        sqe = ctx.get("sqe")
        if sqe is not None:
            free_sqe(sqe)
        done = ctx["done"]
        if len(self._ctx_pool) < 256:
            self._ctx_pool.append(ctx)
        done.succeed(CompletionInfo(ok, status, data, latency))

    # ----------------------------------------------------------------- admin
    def admin(
        self,
        opcode: AdminOpcode,
        cdw10: int = 0,
        cdw11: int = 0,
        prp1: int = 0,
        payload: Any = None,
    ) -> Event:
        done = self.sim.event(name=f"{self.name}.admin")
        self.sim.process(
            self._admin_proc(opcode, cdw10, cdw11, prp1, payload, done),
            name=f"{self.name}.adminp",
        )
        return done

    def _admin_proc(self, opcode, cdw10, cdw11, prp1, payload, done):
        start = self.sim.now
        yield self.sim.timeout(self.kernel.submit_overhead_ns)
        qp = self._qps[0]
        cid = self._next_cid[0] = (self._next_cid[0] + 1) % 0xFFFF
        sqe = SQE(opcode=int(opcode), cid=cid, nsid=self.nsid,
                  cdw10=cdw10, cdw11=cdw11, prp1=prp1, payload=payload,
                  submit_time_ns=start)
        qp.sq.push(sqe)
        self._pending[(0, cid)] = {
            "done": done, "start": start, "buf": 0,
            "length": 0, "want_data": False, "push": False, "qid": 0,
            "span": None, "sqe": None,
        }
        self.stats.submitted += 1
        yield self.host.fabric.cpu_write(qp.sq_doorbell, 4)
