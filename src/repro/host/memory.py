"""Host physical memory: the DMA target of everything.

Byte-accurate storage is *optional*: performance runs pass
``data=None`` and only timing is modeled; integrity tests pass real
bytes, which are kept in 4 KiB pages so scattered DMA writes (PRP page
granularity) reassemble correctly on read.

A parallel *object store* holds structured queue entries (SQE/CQE
dataclasses) at their ring addresses — the simulation's stand-in for
serialized structures, charged at their real wire size.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import SimulationError, Simulator
from ..sim.units import PAGE_SIZE

__all__ = ["HostMemory", "BufferPool", "PAGE_SIZE"]


class BufferPool:
    """Recycling DMA-buffer allocator over a :class:`HostMemory`.

    Buckets freed buffers by size so long simulations do not exhaust
    the bump allocator.
    """

    def __init__(self, memory: "HostMemory"):
        self.memory = memory
        self._free: dict[int, list[int]] = {}
        #: bound CheckContext (prp checker); None = dormant, zero-cost
        self.checks = None

    def get(self, nbytes: int) -> int:
        bucket = self._free.get(nbytes)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self.memory.alloc(nbytes)
        if self.checks is not None:
            self.checks.on_buffer_alloc(self, addr, nbytes)
        return addr

    def put(self, addr: int, nbytes: int) -> None:
        if self.checks is not None:
            self.checks.on_buffer_free(self, addr, nbytes)
        self._free.setdefault(nbytes, []).append(addr)


class HostMemory:
    """DRAM address space with a bump-pointer allocator.

    Implements the fabric :class:`~repro.pcie.fabric.AddressHandler`
    protocol so it can serve as the root window of a PCIe domain.
    """

    def __init__(
        self,
        sim: Simulator,
        size: int,
        access_ns: int = 60,
        base: int = 0,
        name: str = "dram",
    ):
        self.sim = sim
        self.size = size
        self.base = base
        self.name = name
        self._access_ns = access_ns
        self._pages: dict[int, bytearray] = {}
        self._objects: dict[int, Any] = {}
        self._next_free = base
        self.bytes_written = 0
        self.bytes_read = 0

    # -- allocator ---------------------------------------------------------
    def alloc(self, nbytes: int, align: int = PAGE_SIZE) -> int:
        """Allocate a region; returns its base address."""
        if nbytes <= 0:
            raise SimulationError(f"allocation of {nbytes} bytes")
        addr = -(-self._next_free // align) * align  # round up
        if addr + nbytes > self.base + self.size:
            raise SimulationError(
                f"{self.name}: out of memory allocating {nbytes} bytes"
            )
        self._next_free = addr + nbytes
        return addr

    @property
    def allocated(self) -> int:
        return self._next_free - self.base

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    # -- AddressHandler protocol --------------------------------------------
    @property
    def access_ns(self) -> int:
        return self._access_ns

    def mem_write(self, addr: int, length: int, data: Optional[bytes]) -> None:
        self.bytes_written += length
        if data is None:
            return
        if len(data) != length:
            raise SimulationError("data length mismatch on memory write")
        self._scatter(addr, data)

    def mem_read(self, addr: int, length: int) -> Optional[Any]:
        self.bytes_read += length
        if addr in self._objects:
            # structured queue entry / PRP list parked at this address
            return self._objects[addr]
        return self._gather(addr, length)

    # -- byte-accurate backing store ------------------------------------------
    def _scatter(self, addr: int, data: bytes) -> None:
        offset = 0
        while offset < len(data):
            page_idx, page_off = divmod(addr + offset, PAGE_SIZE)
            chunk = min(PAGE_SIZE - page_off, len(data) - offset)
            page = self._pages.get(page_idx)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[page_idx] = page
            page[page_off : page_off + chunk] = data[offset : offset + chunk]
            offset += chunk

    def _gather(self, addr: int, length: int) -> Optional[bytes]:
        if not self._pages:
            # performance runs never scatter bytes: skip assembling a
            # zero-filled buffer that would be discarded anyway
            return None
        out = bytearray()
        offset = 0
        any_backed = False
        while offset < length:
            page_idx, page_off = divmod(addr + offset, PAGE_SIZE)
            chunk = min(PAGE_SIZE - page_off, length - offset)
            page = self._pages.get(page_idx)
            if page is not None:
                any_backed = True
                out += page[page_off : page_off + chunk]
            else:
                out += bytes(chunk)
            offset += chunk
        return bytes(out) if any_backed else None

    # -- object store (structured queue entries) -------------------------------
    def store_obj(self, addr: int, obj: Any) -> None:
        self._objects[addr] = obj

    def load_obj(self, addr: int) -> Any:
        return self._objects.get(addr)

    def pop_obj(self, addr: int) -> Any:
        return self._objects.pop(addr, None)
