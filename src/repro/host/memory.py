"""Host physical memory: the DMA target of everything.

Byte-accurate storage is *optional*: performance runs pass
``data=None`` and only timing is modeled; integrity tests pass real
bytes, which are kept in 4 KiB pages so scattered DMA writes (PRP page
granularity) reassemble correctly on read.

A parallel *object store* holds structured queue entries (SQE/CQE
dataclasses) at their ring addresses — the simulation's stand-in for
serialized structures, charged at their real wire size.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import SimulationError, Simulator
from ..sim.units import PAGE_SIZE

__all__ = ["HostMemory", "BufferPool", "PAGE_SIZE"]


class BufferPool:
    """Recycling DMA-buffer allocator over a :class:`HostMemory`.

    Buckets freed buffers by page-multiple size class: the backing bump
    allocator never reclaims, so exact-size buckets would fragment long
    mixed-size runs into spurious out-of-memory (a 24-byte PRP list and
    a 56-byte one could never share a buffer).  Rounding both the bucket
    key and the allocation to the next page multiple lets every small
    request recycle the same buffers, bounding ``memory.allocated`` by
    the peak working set instead of the sum of distinct sizes.

    When a :class:`~repro.core.cxl.CXLBufferTier` is attached (``tier``
    non-None), chip-memory exhaustion spills into the tier instead of
    raising, and on-card buffers are always preferred so the hot set
    stays on-card; the dormant path (``tier is None``) is one pointer
    test away from the historical behavior.
    """

    def __init__(self, memory: "HostMemory"):
        self.memory = memory
        self._free: dict[int, list[int]] = {}
        #: spilled (tier-resident) free buckets, only populated when armed
        self._free_tier: dict[int, list[int]] = {}
        #: bound CheckContext (prp checker); None = dormant, zero-cost
        self.checks = None
        #: bound CXLBufferTier (spill/borrow); None = dormant, zero-cost
        self.tier = None

    @staticmethod
    def bucket_size(nbytes: int) -> int:
        """The page-multiple size class a request is served from."""
        return -(-nbytes // PAGE_SIZE) * PAGE_SIZE

    def owner_name(self, addr: int) -> str:
        """Name of the memory ``addr`` lives in (checker bookkeeping
        follows buffers across tiers by this key)."""
        if self.tier is not None and not self.memory.contains(addr):
            return self.tier.owner_name(addr)
        return self.memory.name

    def get(self, nbytes: int) -> int:
        size = self.bucket_size(nbytes)
        bucket = self._free.get(size)
        onchip = True
        if bucket:
            addr = bucket.pop()
        else:
            try:
                addr = self.memory.alloc(size)
            except SimulationError:
                if self.tier is None:
                    raise
                tbucket = self._free_tier.get(size)
                if tbucket:
                    addr = tbucket.pop()
                else:
                    addr = self.tier.spill(size)
                onchip = False
        if self.tier is not None:
            self.tier.note_get(size, onchip,
                               idle_spilled=self._free_tier.get(size))
        if self.checks is not None:
            self.checks.on_buffer_alloc(self, addr, size)
        return addr

    def put(self, addr: int, nbytes: int) -> None:
        size = self.bucket_size(nbytes)
        if self.checks is not None:
            self.checks.on_buffer_free(self, addr, size)
        if self.memory.contains(addr):
            bucket = self._free.setdefault(size, [])
        elif self.tier is not None and self.tier.contains(addr):
            if self.tier.absorb_revoked(addr):
                return  # the lender vanished while this buffer was in flight
            bucket = self._free_tier.setdefault(size, [])
        else:
            # inline guard (independent of any bound checker): a foreign
            # address would be handed to the next get as if it were a
            # valid DMA buffer
            raise SimulationError(
                f"{self.memory.name}: foreign address {addr:#x} "
                "returned to pool"
            )
        if addr in bucket:
            # inline guard: same-addr re-free while still pooled would
            # hand one buffer to two owners on the next two gets
            raise SimulationError(
                f"{self.memory.name}: double free of pooled buffer "
                f"{addr:#x} ({size} bytes)"
            )
        bucket.append(addr)

    def drop_addresses(self, dead: set) -> set:
        """Purge revoked addresses from the free buckets.

        Returns the subset actually found pooled; the rest are in
        flight and get absorbed by ``put`` later.
        """
        purged = set()
        for bucket in self._free_tier.values():
            hit = [a for a in bucket if a in dead]
            if hit:
                purged.update(hit)
                bucket[:] = [a for a in bucket if a not in dead]
        return purged


class HostMemory:
    """DRAM address space with a bump-pointer allocator.

    Implements the fabric :class:`~repro.pcie.fabric.AddressHandler`
    protocol so it can serve as the root window of a PCIe domain.
    """

    def __init__(
        self,
        sim: Simulator,
        size: int,
        access_ns: int = 60,
        base: int = 0,
        name: str = "dram",
    ):
        self.sim = sim
        self.size = size
        self.base = base
        self.name = name
        self._access_ns = access_ns
        self._pages: dict[int, bytearray] = {}
        self._objects: dict[int, Any] = {}
        self._next_free = base
        self.bytes_written = 0
        self.bytes_read = 0

    # -- allocator ---------------------------------------------------------
    def alloc(self, nbytes: int, align: int = PAGE_SIZE) -> int:
        """Allocate a region; returns its base address."""
        if nbytes <= 0:
            raise SimulationError(f"allocation of {nbytes} bytes")
        addr = -(-self._next_free // align) * align  # round up
        if addr + nbytes > self.base + self.size:
            raise SimulationError(
                f"{self.name}: out of memory allocating {nbytes} bytes"
            )
        self._next_free = addr + nbytes
        return addr

    @property
    def allocated(self) -> int:
        return self._next_free - self.base

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    # -- AddressHandler protocol --------------------------------------------
    @property
    def access_ns(self) -> int:
        return self._access_ns

    def mem_write(self, addr: int, length: int, data: Optional[bytes]) -> None:
        self.bytes_written += length
        if data is None:
            return
        if len(data) != length:
            raise SimulationError("data length mismatch on memory write")
        self._scatter(addr, data)

    def mem_read(self, addr: int, length: int) -> Optional[Any]:
        self.bytes_read += length
        if addr in self._objects:
            # structured queue entry / PRP list parked at this address
            return self._objects[addr]
        return self._gather(addr, length)

    # -- byte-accurate backing store ------------------------------------------
    def _scatter(self, addr: int, data: bytes) -> None:
        offset = 0
        while offset < len(data):
            page_idx, page_off = divmod(addr + offset, PAGE_SIZE)
            chunk = min(PAGE_SIZE - page_off, len(data) - offset)
            page = self._pages.get(page_idx)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[page_idx] = page
            page[page_off : page_off + chunk] = data[offset : offset + chunk]
            offset += chunk

    def _gather(self, addr: int, length: int) -> Optional[bytes]:
        if not self._pages:
            # performance runs never scatter bytes: skip assembling a
            # zero-filled buffer that would be discarded anyway
            return None
        out = bytearray()
        offset = 0
        any_backed = False
        while offset < length:
            page_idx, page_off = divmod(addr + offset, PAGE_SIZE)
            chunk = min(PAGE_SIZE - page_off, length - offset)
            page = self._pages.get(page_idx)
            if page is not None:
                any_backed = True
                out += page[page_off : page_off + chunk]
            else:
                out += bytes(chunk)
            offset += chunk
        return bytes(out) if any_backed else None

    # -- object store (structured queue entries) -------------------------------
    def store_obj(self, addr: int, obj: Any) -> None:
        self._objects[addr] = obj

    def load_obj(self, addr: int) -> Any:
        return self._objects.get(addr)

    def pop_obj(self, addr: int) -> Any:
        return self._objects.pop(addr, None)
