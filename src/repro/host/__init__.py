"""Host substrate: memory, CPU, kernel profiles, NVMe driver, VMs."""

from .block import BlockTarget, CompletionInfo
from .cpu import Core, HostCPU
from .driver import DriverStats, NVMeControllerTarget, NVMeDriver
from .environment import IRQ_WINDOW_BASE, Host
from .kernel_profile import DEFAULT_KERNEL, KERNEL_PROFILES, KernelProfile
from .memory import PAGE_SIZE, HostMemory
from .policy import (
    DEFAULT_POLICY,
    DMA_MODELS,
    DOORBELL_MODES,
    POLICY_PRESETS,
    SubmissionPolicy,
    parse_policy,
    resolve_policy,
)
from .vm import VirtualMachine, VMProfile

__all__ = [
    "DEFAULT_POLICY",
    "DMA_MODELS",
    "DOORBELL_MODES",
    "POLICY_PRESETS",
    "SubmissionPolicy",
    "parse_policy",
    "resolve_policy",
    "BlockTarget",
    "CompletionInfo",
    "Core",
    "HostCPU",
    "DriverStats",
    "NVMeControllerTarget",
    "NVMeDriver",
    "IRQ_WINDOW_BASE",
    "Host",
    "DEFAULT_KERNEL",
    "KERNEL_PROFILES",
    "KernelProfile",
    "PAGE_SIZE",
    "HostMemory",
    "VirtualMachine",
    "VMProfile",
]
