"""Block-device interface shared by every storage scheme.

Workloads (fio jobs, the mini databases) talk to a :class:`BlockTarget`
and never know whether it is a native disk, a BM-Store VF, a VFIO
device in a VM, or an SPDK vhost virtio disk — mirroring how the real
schemes are interchangeable behind the kernel block layer.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from ..sim import Event

__all__ = ["BlockTarget", "CompletionInfo"]


class CompletionInfo:
    """What a completed block request reports back."""

    __slots__ = ("ok", "status", "data", "latency_ns")

    def __init__(self, ok: bool, status: int, data: Optional[bytes], latency_ns: int):
        self.ok = ok
        self.status = status
        self.data = data
        self.latency_ns = latency_ns

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CompletionInfo ok={self.ok} status={self.status} lat={self.latency_ns}ns>"


@runtime_checkable
class BlockTarget(Protocol):
    """Asynchronous block device: events fire with :class:`CompletionInfo`."""

    @property
    def num_blocks(self) -> int:
        """Device capacity in logical blocks."""
        ...  # pragma: no cover

    @property
    def block_bytes(self) -> int:
        ...  # pragma: no cover

    def read(self, lba: int, nblocks: int) -> Event:
        ...  # pragma: no cover

    def write(self, lba: int, nblocks: int, payload: Optional[bytes] = None) -> Event:
        ...  # pragma: no cover

    def flush(self) -> Event:
        ...  # pragma: no cover
