"""Virtual machines on the bare-metal host.

The bare-metal tenant runs VMs (or containers) on the server; each VM
gets a virtual disk through one of the schemes: a VFIO-assigned device,
a BM-Store VF, or an SPDK vhost virtio device.

The VM contributes the virtualization-only costs on top of the guest
kernel profile:

* ``irq_injection_ns`` — posted-interrupt / vmexit cost to deliver a
  device interrupt into the guest (the ~2.5-3 us delta between the
  paper's bare-metal Table V and in-VM Table VII at qd1).
* ``submit_extra_ns`` — small guest-side virtualization tax per submit.
* ``lock_multiplier`` — guest queue-lock sections cost more under
  vCPU scheduling/cache effects; this reproduces the VM-vs-bare-metal
  IOPS gap at deep queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs import MetricsRegistry
from ..sim import Simulator
from .driver import NVMeControllerTarget, NVMeDriver
from .environment import Host
from .kernel_profile import DEFAULT_KERNEL, KernelProfile

__all__ = ["VMProfile", "VirtualMachine"]


@dataclass(frozen=True)
class VMProfile:
    """Virtualization overhead constants."""

    vcpus: int = 4
    memory_gb: int = 4
    irq_injection_ns: int = 2500
    submit_extra_ns: int = 300
    lock_multiplier: float = 3.5


class VirtualMachine:
    """One guest: binds virtual disks with VM overheads applied."""

    def __init__(
        self,
        host: Host,
        name: str,
        profile: VMProfile = VMProfile(),
        guest_kernel: KernelProfile = DEFAULT_KERNEL,
    ):
        self.host = host
        self.sim: Simulator = host.sim
        self.name = name
        self.profile = profile
        self.guest_kernel = guest_kernel
        self.drivers: list[NVMeDriver] = []

    def bind_nvme(
        self,
        controller: NVMeControllerTarget,
        nsid: int = 1,
        num_io_queues: Optional[int] = None,
        queue_depth: int = 1024,
        obs: Optional[MetricsRegistry] = None,
        fault_policy=None,
        checks=None,
        policy=None,
    ) -> NVMeDriver:
        """Attach a passthrough NVMe controller (VFIO or BM-Store VF)."""
        contended = int(self.guest_kernel.submit_lock_ns * self.profile.lock_multiplier)
        driver = NVMeDriver(
            self.host,
            controller,
            nsid=nsid,
            num_io_queues=num_io_queues or self.profile.vcpus,
            queue_depth=queue_depth,
            kernel=self.guest_kernel,
            extra_submit_ns=self.profile.submit_extra_ns,
            extra_completion_ns=self.profile.irq_injection_ns,
            lock_ns=self.guest_kernel.submit_lock_ns,
            contended_lock_ns=contended,
            name=f"{self.name}.nvme",
            obs=obs,
            fault_policy=fault_policy,
            checks=checks,
            policy=policy,
        )
        self.drivers.append(driver)
        return driver
