"""Host OS / kernel I/O-path cost profiles (paper Table VI).

BM-Store's transparency claim is that it runs unmodified under any
host kernel; what *does* change across kernels is the host's own I/O
path cost.  Each profile captures the per-I/O overheads of one
OS+kernel combination, calibrated so the Table VI shape reproduces:
identical IOPS across CentOS kernels, a ~6% dip with different
latency on Fedora (different IRQ/completion path).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelProfile", "KERNEL_PROFILES", "DEFAULT_KERNEL"]


@dataclass(frozen=True)
class KernelProfile:
    """Per-I/O host software costs for one OS/kernel combination."""

    os_name: str
    kernel: str
    #: CPU work to build+submit one command (syscall, block layer, driver)
    submit_overhead_ns: int
    #: serialized per-device submission section (queue lock / doorbell)
    submit_lock_ns: int
    #: IRQ entry + completion dispatch cost per I/O
    irq_overhead_ns: int
    #: extra delay on the completion path (softirq scheduling, IRQ
    #: migration) — the knob that differentiates Fedora in Table VI
    completion_extra_ns: int = 0

    @property
    def label(self) -> str:
        return f"{self.os_name} {self.kernel}"


# Calibrated per DESIGN.md §5.  CentOS kernels share the classic
# single-lock nvme submission path; Fedora's newer stacks pay more on
# the completion side (IRQ spreading + softirq), which is what shaves
# ~6% off IOPS in the paper's qd16/numjobs=8 test.
KERNEL_PROFILES: dict[str, KernelProfile] = {
    "centos7-3.10.0": KernelProfile(
        os_name="CentOS 7.4.1708", kernel="3.10.0",
        submit_overhead_ns=900, submit_lock_ns=900, irq_overhead_ns=900,
        completion_extra_ns=900,
    ),
    "centos7-4.19.127": KernelProfile(
        os_name="CentOS 7.4.1708", kernel="4.19.127",
        submit_overhead_ns=850, submit_lock_ns=900, irq_overhead_ns=900,
        completion_extra_ns=950,
    ),
    "centos7-5.4.3": KernelProfile(
        os_name="CentOS 7.4.1708", kernel="5.4.3",
        submit_overhead_ns=850, submit_lock_ns=890, irq_overhead_ns=900,
        completion_extra_ns=1000,
    ),
    "fedora33-4.9.296": KernelProfile(
        os_name="Fedora 33", kernel="4.9.296",
        submit_overhead_ns=1000, submit_lock_ns=950, irq_overhead_ns=1100,
        completion_extra_ns=6630,
    ),
    "fedora33-5.8.15": KernelProfile(
        os_name="Fedora 33", kernel="5.8.15",
        submit_overhead_ns=950, submit_lock_ns=930, irq_overhead_ns=1050,
        completion_extra_ns=6590,
    ),
}

#: The paper's primary host (Table III): CentOS 7, kernel 3.10.0.
DEFAULT_KERNEL = KERNEL_PROFILES["centos7-3.10.0"]
