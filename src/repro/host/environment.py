"""The host machine: memory + PCIe root + interrupt controller + CPU.

One :class:`Host` is the Table III server: it owns the host-side PCIe
fabric (whose root window is its DRAM + MSI target range), the MSI-X
interrupt controller, and the CPU cores.  Devices (native SSDs or the
BMS-Engine card) attach to ``host.fabric``.
"""

from __future__ import annotations

from typing import Optional

from ..pcie.fabric import PCIeFabric
from ..pcie.msix import InterruptController
from ..sim import Simulator, StreamFactory
from .cpu import HostCPU
from .kernel_profile import DEFAULT_KERNEL, KernelProfile
from .memory import HostMemory

__all__ = ["Host", "IRQ_WINDOW_BASE"]

#: MSI message window, far above DRAM.
IRQ_WINDOW_BASE = 0xFEE0_0000_0000


class _RootSpace:
    """Root-complex address space: DRAM plus the MSI target window."""

    def __init__(self, memory: HostMemory, irq: InterruptController):
        self.memory = memory
        self.irq = irq

    def _target(self, addr: int):
        if addr >= self.irq.base:
            return self.irq
        return self.memory

    @property
    def access_ns(self) -> int:
        return self.memory.access_ns

    def mem_write(self, addr: int, length: int, data: Optional[bytes]) -> None:
        self._target(addr).mem_write(addr, length, data)

    def mem_read(self, addr: int, length: int):
        return self._target(addr).mem_read(addr, length)


class Host:
    """A bare-metal server (defaults follow the paper's Table III)."""

    def __init__(
        self,
        sim: Simulator,
        streams: StreamFactory,
        memory_bytes: int = 768 * 1024**3,
        num_cores: int = 48,
        kernel: KernelProfile = DEFAULT_KERNEL,
        name: str = "host",
    ):
        self.sim = sim
        self.streams = streams
        self.name = name
        self.kernel = kernel
        self.memory = HostMemory(sim, memory_bytes, name=f"{name}.dram")
        self.cpu = HostCPU(sim, num_cores)
        self.irq = InterruptController(base=IRQ_WINDOW_BASE)
        self.fabric = PCIeFabric(sim, name=f"{name}.pcie")
        self.fabric.set_root_handler(_RootSpace(self.memory, self.irq))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} kernel={self.kernel.label}>"
