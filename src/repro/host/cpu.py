"""Host CPU model: cores, dedication, and utilization accounting.

The paper's host-efficiency argument is about *cores*: SPDK vhost
dedicates polling cores that can no longer be sold to tenants, while
BM-Store consumes zero.  This model tracks exactly that — which cores
are dedicated to infrastructure vs available to tenants — plus busy
time for utilization reporting.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Resource, SimulationError, Simulator

__all__ = ["Core", "HostCPU"]


class Core:
    """A single hardware thread."""

    def __init__(self, sim: Simulator, index: int):
        self.sim = sim
        self.index = index
        self.dedicated_to: Optional[str] = None
        self._res = Resource(sim, 1, name=f"core{index}")

    def run(self, duration_ns: int):
        """Process generator: occupy this core for ``duration_ns``."""
        yield self._res.acquire()
        try:
            yield self.sim.timeout(duration_ns)
        finally:
            self._res.release()

    def utilization(self, since: int = 0) -> float:
        return self._res.utilization(since)

    @property
    def busy(self) -> bool:
        return self._res.in_use > 0


class HostCPU:
    """The socket(s): a fixed set of cores.

    ``dedicate(n, owner)`` removes cores from the tenant-visible pool —
    the TCO-relevant operation.
    """

    def __init__(self, sim: Simulator, num_cores: int):
        if num_cores < 1:
            raise SimulationError("need at least one core")
        self.sim = sim
        self.cores = [Core(sim, i) for i in range(num_cores)]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def dedicate(self, count: int, owner: str) -> list[Core]:
        """Reserve ``count`` free cores for infrastructure use."""
        free = [c for c in self.cores if c.dedicated_to is None]
        if len(free) < count:
            raise SimulationError(
                f"cannot dedicate {count} cores; only {len(free)} free"
            )
        taken = free[:count]
        for core in taken:
            core.dedicated_to = owner
        return taken

    def release_dedicated(self, owner: str) -> None:
        for core in self.cores:
            if core.dedicated_to == owner:
                core.dedicated_to = None

    @property
    def tenant_cores(self) -> list[Core]:
        return [c for c in self.cores if c.dedicated_to is None]

    @property
    def dedicated_count(self) -> int:
        return sum(1 for c in self.cores if c.dedicated_to is not None)

    def dedicated_by(self, owner: str) -> int:
        return sum(1 for c in self.cores if c.dedicated_to == owner)
