"""Submission policy: how a driver talks to its controller's rings.

One frozen value object gathers every knob of the submission and
completion fast path — doorbell mode, doorbell batching, CQE/IRQ
coalescing, and the engine-side DMA model — so scheme runners, the
experiment grid, and the CLI all spell them the same way instead of
growing ad-hoc per-rig keyword arguments.

The default policy reproduces the classic interrupt-per-CQE,
MMIO-per-command NVMe path byte-for-byte: a world built with
``DEFAULT_POLICY`` (or no policy at all) schedules exactly the same
event sequence as one built before this API existed, which is what
keeps the committed bench baselines and the determinism CI job valid.

Doorbell modes
--------------
``immediate``
    One posted MMIO write per submitted command (the textbook driver).
``shadow``
    NVMe shadow-doorbell convention: the driver publishes the new tail
    in shared memory and only pays the MMIO when the device has gone
    idle and re-armed its wakeup (``SubmissionQueue.db_armed``).
``batched``
    The driver accumulates submissions and rings once per
    ``batch_depth`` commands; a full ring or the deterministic
    ``batch_timeout_ns`` deadline flushes early so shallow queues never
    stall.

CQE coalescing (``coalesce_threshold``/``coalesce_timeout_ns``) is the
NVMe interrupt-coalescing feature: the device raises MSI-X only every
N completions or when the aggregation timer fires, whichever is first.

The DMA model (``dma``) picks the engine's step-⑤ routing machinery
per namespace: ``register`` is the cut-through per-TLP trigger FSM,
``descriptor`` streams descriptors through a ring FIFO (LitePCIe
style) with a lower per-descriptor cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from ..sim import SimulationError

__all__ = [
    "DOORBELL_MODES",
    "DMA_MODELS",
    "SubmissionPolicy",
    "DEFAULT_POLICY",
    "POLICY_PRESETS",
    "parse_policy",
    "resolve_policy",
]

DOORBELL_MODES = ("immediate", "shadow", "batched")
DMA_MODELS = ("register", "descriptor")


@dataclass(frozen=True)
class SubmissionPolicy:
    """How submissions reach the device and completions come back."""

    #: one of :data:`DOORBELL_MODES`
    doorbell: str = "immediate"
    #: batched mode: MMIO ring once per this many submissions
    batch_depth: int = 8
    #: batched mode: deterministic flush deadline for a partial batch
    batch_timeout_ns: int = 20_000
    #: device raises MSI-X every N CQEs (1 = interrupt per completion)
    coalesce_threshold: int = 1
    #: aggregation timer bounding IRQ delay when under threshold
    coalesce_timeout_ns: int = 0
    #: engine DMA routing model, one of :data:`DMA_MODELS`
    dma: str = "register"

    def __post_init__(self) -> None:
        if self.doorbell not in DOORBELL_MODES:
            raise SimulationError(
                f"doorbell mode {self.doorbell!r} not one of {DOORBELL_MODES}"
            )
        if self.dma not in DMA_MODELS:
            raise SimulationError(
                f"dma model {self.dma!r} not one of {DMA_MODELS}"
            )
        if self.batch_depth < 1:
            raise SimulationError("batch_depth must be >= 1")
        if self.batch_timeout_ns < 0 or self.coalesce_timeout_ns < 0:
            raise SimulationError("policy timeouts must be >= 0")
        if self.coalesce_threshold < 1:
            raise SimulationError("coalesce_threshold must be >= 1")
        if self.coalesce_threshold > 1 and self.coalesce_timeout_ns <= 0:
            # a threshold with no timer would strand the last CQEs of a
            # shallow queue forever; NVMe controllers always pair them
            raise SimulationError(
                "coalesce_threshold > 1 requires coalesce_timeout_ns > 0"
            )

    @property
    def coalescing(self) -> bool:
        return self.coalesce_threshold > 1 or self.coalesce_timeout_ns > 0

    @property
    def is_default(self) -> bool:
        return self == DEFAULT_POLICY

    def spell(self) -> str:
        """The canonical ``--policy`` string parsing back to this value."""
        parts = [f"doorbell={self.doorbell}"]
        if self.doorbell == "batched":
            parts.append(f"batch={self.batch_depth}")
            parts.append(f"batch_timeout_ns={self.batch_timeout_ns}")
        if self.coalescing:
            parts.append(f"coalesce={self.coalesce_threshold}")
            parts.append(f"coalesce_timeout_ns={self.coalesce_timeout_ns}")
        parts.append(f"dma={self.dma}")
        return ",".join(parts)


DEFAULT_POLICY = SubmissionPolicy()

#: named spellings for the CLI / RunSpec string form
POLICY_PRESETS: dict[str, SubmissionPolicy] = {
    "default": DEFAULT_POLICY,
    "shadow": SubmissionPolicy(doorbell="shadow"),
    "batched": SubmissionPolicy(doorbell="batched"),
    "coalesced": SubmissionPolicy(coalesce_threshold=4,
                                  coalesce_timeout_ns=8_000),
    # everything on: the high-iodepth throughput configuration
    "throughput": SubmissionPolicy(doorbell="shadow", coalesce_threshold=4,
                                   coalesce_timeout_ns=8_000,
                                   dma="descriptor"),
}

_INT_KEYS = {
    "batch": "batch_depth",
    "batch_depth": "batch_depth",
    "batch_timeout_ns": "batch_timeout_ns",
    "coalesce": "coalesce_threshold",
    "coalesce_threshold": "coalesce_threshold",
    "coalesce_timeout_ns": "coalesce_timeout_ns",
}
_STR_KEYS = {"doorbell": "doorbell", "dma": "dma"}


def parse_policy(text: str) -> SubmissionPolicy:
    """Parse a ``--policy`` string.

    Accepts a preset name (``"throughput"``), a bare doorbell mode
    (``"batched"``, ``"batched:16"`` for the batch depth), or a comma
    list of ``key=value`` fields over the dataclass knobs, e.g.
    ``"doorbell=shadow,coalesce=4,coalesce_timeout_ns=8000,dma=descriptor"``.
    """
    text = text.strip()
    if not text:
        return DEFAULT_POLICY
    preset = POLICY_PRESETS.get(text)
    if preset is not None:
        return preset
    if ":" in text and "=" not in text:
        mode, _, depth = text.partition(":")
        if mode not in DOORBELL_MODES:
            raise ValueError(
                f"unknown doorbell mode {mode!r} in policy {text!r}"
            )
        try:
            return SubmissionPolicy(doorbell=mode, batch_depth=int(depth))
        except ValueError:
            raise ValueError(f"bad batch depth in policy {text!r}") from None
    if "=" not in text:
        if text in DOORBELL_MODES:
            return SubmissionPolicy(doorbell=text)
        known = sorted({*POLICY_PRESETS, *DOORBELL_MODES})
        raise ValueError(f"unknown policy {text!r} (known: {', '.join(known)})")
    fields: dict[str, object] = {}
    for token in text.split(","):
        key, sep, value = token.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not value:
            raise ValueError(f"bad policy field {token!r} (want key=value)")
        if key in _STR_KEYS:
            fields[_STR_KEYS[key]] = value
        elif key in _INT_KEYS:
            try:
                fields[_INT_KEYS[key]] = int(value)
            except ValueError:
                raise ValueError(
                    f"policy field {key}={value!r} is not an integer"
                ) from None
        else:
            known = sorted({*_STR_KEYS, *_INT_KEYS})
            raise ValueError(
                f"unknown policy field {key!r} (known: {', '.join(known)})"
            )
    try:
        return SubmissionPolicy(**fields)  # type: ignore[arg-type]
    except SimulationError as exc:
        raise ValueError(str(exc)) from None


def resolve_policy(
    policy: Union[None, str, SubmissionPolicy],
) -> Optional[SubmissionPolicy]:
    """``None``/policy/string -> policy (``None`` stays ``None``)."""
    if policy is None or isinstance(policy, SubmissionPolicy):
        return policy
    if isinstance(policy, str):
        return parse_policy(policy)
    raise TypeError(
        f"policy must be a SubmissionPolicy, a string, or None; got {policy!r}"
    )


def _merge_deprecated_kwargs(policy, doorbell_mode=None, batch_doorbells=None,
                             coalesce=None, dma_model=None, _warn=None):
    """Map the pre-policy ad-hoc kwargs onto a SubmissionPolicy.

    Used by :func:`repro.experiments.common.run_case` to keep the old
    spellings working behind a ``DeprecationWarning``.
    """
    base = resolve_policy(policy) or DEFAULT_POLICY
    fields = {}
    if doorbell_mode is not None:
        fields["doorbell"] = doorbell_mode
    if batch_doorbells is not None:
        fields["doorbell"] = "batched"
        fields["batch_depth"] = int(batch_doorbells)
    if coalesce is not None:
        fields["coalesce_threshold"] = int(coalesce)
        if base.coalesce_timeout_ns <= 0 and int(coalesce) > 1:
            fields["coalesce_timeout_ns"] = 8_000
    if dma_model is not None:
        fields["dma"] = dma_model
    return replace(base, **fields) if fields else base
